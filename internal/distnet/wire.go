// Package distnet runs the speculation engine across real OS processes over
// TCP — the substrate the paper actually measured on (16 workstations under
// PVM on shared Ethernet), rebuilt on modern sockets.
//
// The package has three layers:
//
//   - a length-prefixed, CRC-checked binary wire codec for cluster.Message
//     plus the control frames of the runtime protocol, with multi-message
//     batch frames and an optional delta codec (wire.go, batch.go);
//   - per-peer TCP connection management — dial retry with exponential
//     backoff, buffered writers, idle-link heartbeats and dead-peer
//     detection (peer.go);
//   - a coordinator handling membership, rank assignment, run configuration,
//     barriers, checkpoint custody and result collection (coord.go), and a
//     node runtime driving the unchanged internal/core engine through the
//     cluster.Transport contract (node.go).
//
// A run is one coordinator process plus P node processes (cmd/speccoord and
// cmd/specnode); nodes may equally run in-process for tests. Observability
// (internal/obs metrics + journal, served per node over HTTP) and
// checkpointing (internal/checkpoint, snapshots held at the coordinator)
// ride through unchanged.
package distnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"

	"specomp/internal/cluster"
)

// FrameType tags the kind of a wire frame.
type FrameType uint8

// Wire frame types. FrameData carries one cluster.Message between peers and
// FrameBatch carries several bound for the same peer; the rest are control
// frames of the coordinator/mesh protocol.
const (
	FrameData       FrameType = 1 + iota // peer → peer: one cluster.Message
	FrameHello                           // both directions: identity (rank, epoch, listen addr, caps)
	FrameConfig                          // coord → node: rank, membership, run spec (JSON blob)
	FrameHeartbeat                       // peer → peer: liveness beacon (idle links only)
	FrameBarrier                         // node → coord: arrival; coord → node: release
	FrameCheckpoint                      // node → coord: snapshot custody (proc, blob)
	FrameResult                          // node → coord: run outcome (JSON blob)
	FrameShutdown                        // coord → node: run over, tear down
	FrameBatch                           // peer → peer: several cluster.Messages in one frame
	FrameObs                             // node → coord: metrics snapshot (rank, Prometheus text blob)
	frameTypeEnd
)

// String returns the frame-type name.
func (t FrameType) String() string {
	switch t {
	case FrameData:
		return "data"
	case FrameHello:
		return "hello"
	case FrameConfig:
		return "config"
	case FrameHeartbeat:
		return "heartbeat"
	case FrameBarrier:
		return "barrier"
	case FrameCheckpoint:
		return "checkpoint"
	case FrameResult:
		return "result"
	case FrameShutdown:
		return "shutdown"
	case FrameBatch:
		return "batch"
	case FrameObs:
		return "obs"
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// Link capability bits, carried in the hello frame's caps word. A sender
// only emits a frame shape the receiving end advertised it can decode, so
// mixed-version meshes degrade to the common subset instead of corrupting.
const (
	// CapBatch: the peer decodes FrameBatch multi-message frames.
	CapBatch uint32 = 1 << iota
	// CapDelta: the peer decodes delta-coded batch entries (enc 1) and
	// tracks per-stream bases from link start.
	CapDelta
	// CapObs: the peer decodes obs frames (metrics snapshots) and the
	// timestamped heartbeat tail used for clock-offset estimation.
	CapObs
)

// MaxFrame bounds one frame's encoded payload. Larger frames are refused on
// both encode and decode — the decoder never allocates more than this on
// behalf of the wire.
const MaxFrame = 16 << 20

// nilData marks a nil message payload on the wire, preserving the nil/empty
// distinction the in-process transports keep (the engine's barrier and
// rejoin frames carry nil payloads).
const nilData = ^uint32(0)

// Error taxonomy of the decoder. Every decode failure is exactly one of:
//
//   - io.EOF — the stream closed cleanly between frames;
//   - io.ErrUnexpectedEOF (wrapped) — the stream died mid-frame. The frame
//     itself may have been fine; the failure is transport-level and a caller
//     with a redial path may retry;
//   - ErrCorrupt (wrapped) — the frame arrived complete but failed
//     validation (CRC mismatch, malformed body, unknown type, oversized or
//     empty length, trailing bytes). The stream is desynchronized or the
//     peer is broken: fatal, never retried.
//
// The distinction matters to handshake paths: a node whose hello reply was
// cut off mid-frame redials, one that read garbage gives up.
var ErrCorrupt = errors.New("corrupt frame")

// Frame is one unit on the wire. Which fields are meaningful depends on
// Type; unused fields must be zero.
type Frame struct {
	Type FrameType
	// Msg is the payload of a FrameData frame.
	Msg cluster.Message
	// Batch is the payload of a FrameBatch frame: several messages bound for
	// the same peer, coalesced into one frame. Decoder.Decode reuses the
	// slice between calls; see its contract.
	Batch []cluster.Message
	// Rank identifies the sender in a FrameHello (-1 before the coordinator
	// assigned one) and the owning processor in a FrameCheckpoint.
	Rank int
	// Epoch is the sender's incarnation epoch in a FrameHello.
	Epoch int
	// Caps is the sender's capability bitmask in a FrameHello.
	Caps uint32
	// Addr is the sender's peer listen address in a FrameHello.
	Addr string
	// Seq is the barrier identifier in a FrameBarrier.
	Seq int
	// Blob carries the JSON body of FrameConfig/FrameResult, the checkpoint
	// snapshot of FrameCheckpoint, and the Prometheus text snapshot of
	// FrameObs.
	Blob []byte
	// Clock is a FrameHeartbeat's optional timestamp tail (unix seconds),
	// used for NTP-style clock-offset estimation on CapObs links:
	// {sender's send time, echo of the last stamp seen from the peer, local
	// receive time of that stamp}. All-zero means no tail.
	Clock [3]float64
}

// Wire layout: a frame is
//
//	[u32 n] [payload: n bytes] [u32 crc32-IEEE(payload)]
//
// with payload = [u8 type][type-specific body], all integers big-endian.
// Body layouts (i64 = two's-complement int64, f64 = IEEE-754 bits):
//
//	data       i64 src, dst, tag, iter, epoch · f64 sentAt · u32 n|nil · n×f64
//	batch      u32 count · count×entry (see batch.go for the entry layout)
//	hello      i64 rank, epoch · u32 len · addr bytes · u32 caps
//	config     u32 len · blob
//	heartbeat  (empty | 3×f64 clock stamps)
//	barrier    i64 seq
//	checkpoint i64 proc · u32 len · blob
//	result     u32 len · blob
//	shutdown   (empty)
//	obs        i64 rank · u32 len · blob
//
// The hello caps word and the heartbeat clock tail are optional on decode
// (absent reads as zero) so frames from builds predating capability
// negotiation still parse; a partial clock tail is corrupt.

// appendI64 encodes v big-endian onto dst.
func appendI64(dst []byte, v int64) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(v))
}

// appendU32 encodes v big-endian onto dst.
func appendU32(dst []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(dst, v)
}

// appendMsgHeader encodes the fixed fields every data/batch message body
// starts with.
func appendMsgHeader(dst []byte, m *cluster.Message) []byte {
	dst = appendI64(dst, int64(m.Src))
	dst = appendI64(dst, int64(m.Dst))
	dst = appendI64(dst, int64(m.Tag))
	dst = appendI64(dst, int64(m.Iter))
	dst = appendI64(dst, int64(m.Epoch))
	return appendI64(dst, int64(math.Float64bits(m.SentAt)))
}

// appendPayload encodes f's payload (type byte + body) onto dst. ds, when
// non-nil, enables delta coding of batch entries (Encoder state); a nil ds
// encodes every entry raw.
func appendPayload(dst []byte, f *Frame, ds *deltaState) ([]byte, error) {
	dst = append(dst, byte(f.Type))
	switch f.Type {
	case FrameData:
		m := &f.Msg
		dst = appendMsgHeader(dst, m)
		if m.Data == nil {
			dst = appendU32(dst, nilData)
		} else {
			dst = appendU32(dst, uint32(len(m.Data)))
			for _, v := range m.Data {
				dst = appendI64(dst, int64(math.Float64bits(v)))
			}
		}
	case FrameBatch:
		if len(f.Batch) == 0 {
			return nil, fmt.Errorf("distnet: encoding empty batch frame")
		}
		dst = appendU32(dst, uint32(len(f.Batch)))
		for i := range f.Batch {
			dst = appendBatchEntry(dst, &f.Batch[i], ds)
		}
	case FrameHello:
		dst = appendI64(dst, int64(f.Rank))
		dst = appendI64(dst, int64(f.Epoch))
		dst = appendU32(dst, uint32(len(f.Addr)))
		dst = append(dst, f.Addr...)
		dst = appendU32(dst, f.Caps)
	case FrameConfig, FrameResult:
		dst = appendU32(dst, uint32(len(f.Blob)))
		dst = append(dst, f.Blob...)
	case FrameCheckpoint, FrameObs:
		dst = appendI64(dst, int64(f.Rank))
		dst = appendU32(dst, uint32(len(f.Blob)))
		dst = append(dst, f.Blob...)
	case FrameBarrier:
		dst = appendI64(dst, int64(f.Seq))
	case FrameHeartbeat:
		if f.Clock != ([3]float64{}) {
			for _, v := range f.Clock {
				dst = appendI64(dst, int64(math.Float64bits(v)))
			}
		}
	case FrameShutdown:
		// No body.
	default:
		return nil, fmt.Errorf("distnet: encoding unknown frame type %d", f.Type)
	}
	return dst, nil
}

// scratchPool recycles encode/decode byte buffers for the stateless
// writeFrame/readFrame paths (control-plane links, tests). The data-plane
// Encoder/Decoder hold their own persistent buffers instead.
var scratchPool = sync.Pool{New: func() any { return new([]byte) }}

// frameInto encodes f into buf (reusing its capacity) as a complete frame:
// length prefix, payload, checksum.
func frameInto(buf []byte, f *Frame, ds *deltaState) ([]byte, error) {
	// Reserve the length prefix, encode the payload in place, then patch
	// length and append the checksum.
	buf = append(buf[:0], 0, 0, 0, 0)
	buf, err := appendPayload(buf, f, ds)
	if err != nil {
		return buf, err
	}
	payload := buf[4:]
	if len(payload) > MaxFrame {
		return buf, fmt.Errorf("distnet: %v frame payload %d bytes exceeds MaxFrame", f.Type, len(payload))
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	return appendU32(buf, crc32.ChecksumIEEE(payload)), nil
}

// writeFrame encodes f raw (no delta state) and writes it to w. scratch is
// an optional reusable buffer; the (possibly grown) buffer is returned for
// the next call. A nil scratch borrows a pooled buffer for the write and
// returns nil, so one-shot callers stay allocation-free too.
func writeFrame(w io.Writer, scratch []byte, f *Frame) ([]byte, error) {
	pooled := scratch == nil
	if pooled {
		scratch = *scratchPool.Get().(*[]byte)
	}
	buf, err := frameInto(scratch, f, nil)
	if err == nil {
		_, err = w.Write(buf)
	}
	if pooled {
		scratchPool.Put(&buf)
		return nil, err
	}
	return buf, err
}

// Encoder writes frames to one stream, reusing its encode buffer and — when
// delta coding is negotiated for the link — carrying the per-stream vector
// bases batch entries are delta-coded against. Not safe for concurrent use;
// each link's writer goroutine owns one.
type Encoder struct {
	w   io.Writer
	buf []byte
	ds  *deltaState // nil: encode batch entries raw
}

// NewEncoder returns an Encoder writing to w. delta enables delta coding of
// batch entries (only set it when the receiving end advertised CapDelta).
func NewEncoder(w io.Writer, delta bool) *Encoder {
	e := &Encoder{w: w}
	if delta {
		e.ds = newDeltaState()
	}
	return e
}

// instrumentDelta attaches a link's compression instrumentation to the
// encoder's delta codec. No-op without delta coding or with a nil handle.
func (e *Encoder) instrumentDelta(lo *linkObs) {
	if e.ds != nil {
		e.ds.lo = lo
	}
}

// Encode writes one frame. Zero allocations in steady state.
func (e *Encoder) Encode(f *Frame) error {
	buf, err := frameInto(e.buf, f, e.ds)
	if cap(buf) > cap(e.buf) {
		e.buf = buf
	}
	if err != nil {
		return err
	}
	_, err = e.w.Write(buf)
	return err
}

// noEOF maps io.EOF to ErrUnexpectedEOF so a mid-frame cut never looks like
// a clean close.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// corruptf builds an ErrCorrupt-classed decode error.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("distnet: "+format+": %w", append(args, ErrCorrupt)...)
}

// Decoder reads frames from one stream, reusing its payload buffer between
// calls and tracking the per-stream vector bases delta-coded batch entries
// reference. Not safe for concurrent use; each link's reader goroutine owns
// one.
//
// Ownership contract of a decoded frame: f.Batch aliases a slice the next
// Decode call reuses — consume or copy the messages first. With Reuse
// false (the default), every Msg.Data payload and Blob is freshly allocated
// and owned by the caller forever (the engine adopts payload buffers). With
// Reuse true, payloads alias per-decoder buffers valid only until the next
// Decode — the zero-allocation mode for consumers that finish with each
// frame before reading the next (echo servers, benchmarks, relays).
type Decoder struct {
	r io.Reader
	// Reuse hands out payload rows owned by the decoder instead of fresh
	// allocations; see the type comment.
	Reuse bool
	// Track maintains delta bases so enc-1 batch entries decode. Set iff
	// this end advertised CapDelta on the link; a delta entry arriving with
	// Track unset is corrupt.
	Track bool

	buf  []byte
	ds   *deltaState
	b    []cluster.Message // reused Batch backing
	rows [][]float64       // Reuse-mode payload rows, indexed by entry position
	pr   payloadReader     // reused cursor (avoids a per-decode escape)
	hdr  [4]byte           // reused header scratch (avoids a per-decode escape)
}

// NewDecoder returns a Decoder reading from r (wrap sockets in a
// bufio.Reader first).
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

// Decode reads and decodes one frame into f. Truncated, corrupt (CRC
// mismatch), oversized or malformed frames return an error classified per
// the package taxonomy (ErrCorrupt vs io.ErrUnexpectedEOF vs io.EOF); the
// decoder never panics and never allocates more than the wire actually
// carries (bounded by MaxFrame).
func (d *Decoder) Decode(f *Frame) error {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF // clean close between frames
		}
		return fmt.Errorf("distnet: truncated frame header: %w", noEOF(err))
	}
	n := binary.BigEndian.Uint32(d.hdr[:])
	if n == 0 {
		return corruptf("empty frame")
	}
	if n > MaxFrame {
		return corruptf("frame payload %d bytes exceeds MaxFrame", n)
	}
	if cap(d.buf) < int(n)+4 {
		d.buf = make([]byte, n+4)
	}
	buf := d.buf[:n+4] // payload + trailing CRC
	if _, err := io.ReadFull(d.r, buf); err != nil {
		return fmt.Errorf("distnet: truncated frame: %w", noEOF(err))
	}
	payload, sum := buf[:n], binary.BigEndian.Uint32(buf[n:])
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return corruptf("frame CRC mismatch (got %08x, want %08x)", got, sum)
	}
	return d.decodePayload(f, payload)
}

// payloadReader cursors over a decoded payload with bounds checking.
type payloadReader struct {
	b   []byte
	off int
	err error
}

func (p *payloadReader) i64() int64 {
	if p.err != nil {
		return 0
	}
	if p.off+8 > len(p.b) {
		p.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.BigEndian.Uint64(p.b[p.off:])
	p.off += 8
	return int64(v)
}

func (p *payloadReader) u32() uint32 {
	if p.err != nil {
		return 0
	}
	if p.off+4 > len(p.b) {
		p.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.BigEndian.Uint32(p.b[p.off:])
	p.off += 4
	return v
}

func (p *payloadReader) u8() uint8 {
	if p.err != nil {
		return 0
	}
	if p.off >= len(p.b) {
		p.err = io.ErrUnexpectedEOF
		return 0
	}
	v := p.b[p.off]
	p.off++
	return v
}

func (p *payloadReader) bytes(n int) []byte {
	if p.err != nil {
		return nil
	}
	if n < 0 || p.off+n > len(p.b) {
		p.err = io.ErrUnexpectedEOF
		return nil
	}
	v := p.b[p.off : p.off+n]
	p.off += n
	return v
}

// emptyFloats is the shared empty-but-non-nil payload.
var emptyFloats = []float64{}

// row returns the payload buffer for the i-th message of the current frame:
// a decoder-owned reused row under Reuse, a fresh allocation otherwise.
func (d *Decoder) row(i, n int) []float64 {
	if n == 0 {
		return emptyFloats
	}
	if !d.Reuse {
		return make([]float64, n)
	}
	for len(d.rows) <= i {
		d.rows = append(d.rows, nil)
	}
	if cap(d.rows[i]) < n {
		d.rows[i] = make([]float64, n)
	}
	d.rows[i] = d.rows[i][:n]
	return d.rows[i]
}

// decodeMsgHeader reads the fixed fields every data/batch message body
// starts with.
func decodeMsgHeader(p *payloadReader, m *cluster.Message) {
	m.Src = int(p.i64())
	m.Dst = int(p.i64())
	m.Tag = int(p.i64())
	m.Iter = int(p.i64())
	m.Epoch = int(p.i64())
	m.SentAt = math.Float64frombits(uint64(p.i64()))
}

// decodePayload decodes a checksummed payload (type byte + body) into f.
// The payload arrived complete (CRC passed), so every failure here is
// corruption, not truncation.
func (d *Decoder) decodePayload(f *Frame, payload []byte) error {
	if len(payload) == 0 {
		return corruptf("empty frame")
	}
	*f = Frame{Type: FrameType(payload[0])}
	d.pr = payloadReader{b: payload, off: 1}
	p := &d.pr
	switch f.Type {
	case FrameData:
		m := &f.Msg
		decodeMsgHeader(p, m)
		if n := p.u32(); n != nilData {
			// A float64 is 8 wire bytes: the count can never exceed the
			// remaining payload, so a lying header is caught before any
			// allocation proportional to it.
			raw := p.bytes(int(n) * 8)
			if p.err == nil {
				m.Data = d.row(0, int(n))
				for i := range m.Data {
					m.Data[i] = math.Float64frombits(binary.BigEndian.Uint64(raw[8*i:]))
				}
			}
		}
	case FrameBatch:
		count := int(p.u32())
		if p.err == nil && (count == 0 || count*batchEntryMin > len(payload)-p.off) {
			return corruptf("batch frame claims %d entries in %d bytes", count, len(payload)-p.off)
		}
		d.b = d.b[:0]
		for i := 0; i < count && p.err == nil; i++ {
			m, err := d.decodeBatchEntry(p, i)
			if err != nil {
				return err
			}
			d.b = append(d.b, m)
		}
		f.Batch = d.b
	case FrameHello:
		f.Rank = int(p.i64())
		f.Epoch = int(p.i64())
		f.Addr = string(p.bytes(int(p.u32())))
		if p.err == nil && p.off < len(p.b) {
			f.Caps = p.u32() // optional tail: absent on pre-caps builds
		}
	case FrameConfig, FrameResult:
		f.Blob = append([]byte(nil), p.bytes(int(p.u32()))...)
	case FrameCheckpoint, FrameObs:
		f.Rank = int(p.i64())
		f.Blob = append([]byte(nil), p.bytes(int(p.u32()))...)
	case FrameBarrier:
		f.Seq = int(p.i64())
	case FrameHeartbeat:
		if p.off < len(p.b) {
			// Optional clock tail: exactly three stamps or nothing.
			for i := range f.Clock {
				f.Clock[i] = math.Float64frombits(uint64(p.i64()))
			}
		}
	case FrameShutdown:
		// No body.
	default:
		return corruptf("unknown frame type %d", payload[0])
	}
	if p.err != nil {
		return corruptf("malformed %v frame body", f.Type)
	}
	if p.off != len(payload) {
		return corruptf("%d trailing bytes after %v frame", len(payload)-p.off, f.Type)
	}
	return nil
}

// readFrame reads and decodes one frame from r with a one-shot pooled
// decoder — the stateless path for control-plane links and tests. The
// returned frame owns all its memory (Batch entries are copied out).
func readFrame(r io.Reader) (Frame, error) {
	d := Decoder{r: r, Track: true}
	d.buf = *scratchPool.Get().(*[]byte)
	var f Frame
	err := d.Decode(&f)
	scratchPool.Put(&d.buf)
	if err == nil && f.Batch != nil {
		f.Batch = append([]cluster.Message(nil), f.Batch...)
	}
	return f, err
}
