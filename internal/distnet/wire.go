// Package distnet runs the speculation engine across real OS processes over
// TCP — the substrate the paper actually measured on (16 workstations under
// PVM on shared Ethernet), rebuilt on modern sockets.
//
// The package has three layers:
//
//   - a length-prefixed, CRC-checked binary wire codec for cluster.Message
//     plus the control frames of the runtime protocol (wire.go);
//   - per-peer TCP connection management — dial retry with exponential
//     backoff, buffered writers, heartbeats and dead-peer detection
//     (peer.go);
//   - a coordinator handling membership, rank assignment, run configuration,
//     barriers, checkpoint custody and result collection (coord.go), and a
//     node runtime driving the unchanged internal/core engine through the
//     cluster.Transport contract (node.go).
//
// A run is one coordinator process plus P node processes (cmd/speccoord and
// cmd/specnode); nodes may equally run in-process for tests. Observability
// (internal/obs metrics + journal, served per node over HTTP) and
// checkpointing (internal/checkpoint, snapshots held at the coordinator)
// ride through unchanged from the simulated substrate.
package distnet

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"specomp/internal/cluster"
)

// FrameType tags the kind of a wire frame.
type FrameType uint8

// Wire frame types. FrameData carries a cluster.Message between peers; the
// rest are control frames of the coordinator/mesh protocol.
const (
	FrameData       FrameType = 1 + iota // peer → peer: one cluster.Message
	FrameHello                           // both directions: identity (rank, epoch, listen addr)
	FrameConfig                          // coord → node: rank, membership, run spec (JSON blob)
	FrameHeartbeat                       // peer → peer: liveness beacon
	FrameBarrier                         // node → coord: arrival; coord → node: release
	FrameCheckpoint                      // node → coord: snapshot custody (proc, blob)
	FrameResult                          // node → coord: run outcome (JSON blob)
	FrameShutdown                        // coord → node: run over, tear down
	frameTypeEnd
)

// String returns the frame-type name.
func (t FrameType) String() string {
	switch t {
	case FrameData:
		return "data"
	case FrameHello:
		return "hello"
	case FrameConfig:
		return "config"
	case FrameHeartbeat:
		return "heartbeat"
	case FrameBarrier:
		return "barrier"
	case FrameCheckpoint:
		return "checkpoint"
	case FrameResult:
		return "result"
	case FrameShutdown:
		return "shutdown"
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// MaxFrame bounds one frame's encoded payload. Larger frames are refused on
// both encode and decode — the decoder never allocates more than this on
// behalf of the wire.
const MaxFrame = 16 << 20

// nilData marks a nil message payload on the wire, preserving the nil/empty
// distinction the in-process transports keep (the engine's barrier and
// rejoin frames carry nil payloads).
const nilData = ^uint32(0)

// Frame is one unit on the wire. Which fields are meaningful depends on
// Type; unused fields must be zero.
type Frame struct {
	Type FrameType
	// Msg is the payload of a FrameData frame.
	Msg cluster.Message
	// Rank identifies the sender in a FrameHello (-1 before the coordinator
	// assigned one) and the owning processor in a FrameCheckpoint.
	Rank int
	// Epoch is the sender's incarnation epoch in a FrameHello.
	Epoch int
	// Addr is the sender's peer listen address in a FrameHello.
	Addr string
	// Seq is the barrier identifier in a FrameBarrier.
	Seq int
	// Blob carries the JSON body of FrameConfig/FrameResult and the
	// checkpoint snapshot of FrameCheckpoint.
	Blob []byte
}

// Wire layout: a frame is
//
//	[u32 n] [payload: n bytes] [u32 crc32-IEEE(payload)]
//
// with payload = [u8 type][type-specific body], all integers big-endian.
// Body layouts (i64 = two's-complement int64, f64 = IEEE-754 bits):
//
//	data       i64 src, dst, tag, iter, epoch · f64 sentAt · u32 n|nil · n×f64
//	hello      i64 rank, epoch · u32 len · addr bytes
//	config     u32 len · blob
//	heartbeat  (empty)
//	barrier    i64 seq
//	checkpoint i64 proc · u32 len · blob
//	result     u32 len · blob
//	shutdown   (empty)

// appendPayload encodes f's payload (type byte + body) onto dst.
func appendPayload(dst []byte, f *Frame) ([]byte, error) {
	dst = append(dst, byte(f.Type))
	putI64 := func(v int64) {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v))
		dst = append(dst, b[:]...)
	}
	putU32 := func(v uint32) {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], v)
		dst = append(dst, b[:]...)
	}
	switch f.Type {
	case FrameData:
		m := &f.Msg
		putI64(int64(m.Src))
		putI64(int64(m.Dst))
		putI64(int64(m.Tag))
		putI64(int64(m.Iter))
		putI64(int64(m.Epoch))
		putI64(int64(math.Float64bits(m.SentAt)))
		if m.Data == nil {
			putU32(nilData)
		} else {
			putU32(uint32(len(m.Data)))
			for _, v := range m.Data {
				putI64(int64(math.Float64bits(v)))
			}
		}
	case FrameHello:
		putI64(int64(f.Rank))
		putI64(int64(f.Epoch))
		putU32(uint32(len(f.Addr)))
		dst = append(dst, f.Addr...)
	case FrameConfig, FrameResult:
		putU32(uint32(len(f.Blob)))
		dst = append(dst, f.Blob...)
	case FrameCheckpoint:
		putI64(int64(f.Rank))
		putU32(uint32(len(f.Blob)))
		dst = append(dst, f.Blob...)
	case FrameBarrier:
		putI64(int64(f.Seq))
	case FrameHeartbeat, FrameShutdown:
		// No body.
	default:
		return nil, fmt.Errorf("distnet: encoding unknown frame type %d", f.Type)
	}
	return dst, nil
}

// writeFrame encodes f and writes it to w. scratch is an optional reusable
// buffer; the (possibly grown) buffer is returned for the next call.
func writeFrame(w io.Writer, scratch []byte, f *Frame) ([]byte, error) {
	// Reserve the length prefix, encode the payload in place, then patch
	// length and append the checksum.
	buf := append(scratch[:0], 0, 0, 0, 0)
	buf, err := appendPayload(buf, f)
	if err != nil {
		return scratch, err
	}
	payload := buf[4:]
	if len(payload) > MaxFrame {
		return buf, fmt.Errorf("distnet: %v frame payload %d bytes exceeds MaxFrame", f.Type, len(payload))
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	buf = append(buf, crc[:]...)
	_, err = w.Write(buf)
	return buf, err
}

// readFrame reads and decodes one frame from r. Truncated, corrupt (CRC
// mismatch), oversized or malformed frames return an error; the decoder
// never panics and never allocates more than the wire actually carries
// (bounded by MaxFrame).
func readFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err // io.EOF between frames is the clean-close signal
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return Frame{}, fmt.Errorf("distnet: empty frame")
	}
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("distnet: frame payload %d bytes exceeds MaxFrame", n)
	}
	buf := make([]byte, n+4) // payload + trailing CRC
	if _, err := io.ReadFull(r, buf); err != nil {
		return Frame{}, fmt.Errorf("distnet: truncated frame: %w", noEOF(err))
	}
	payload, sum := buf[:n], binary.BigEndian.Uint32(buf[n:])
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return Frame{}, fmt.Errorf("distnet: frame CRC mismatch (got %08x, want %08x)", got, sum)
	}
	return decodePayload(payload)
}

// noEOF maps io.EOF to ErrUnexpectedEOF so a mid-frame cut never looks like
// a clean close.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// payloadReader cursors over a decoded payload with bounds checking.
type payloadReader struct {
	b   []byte
	off int
	err error
}

func (p *payloadReader) i64() int64 {
	if p.err != nil {
		return 0
	}
	if p.off+8 > len(p.b) {
		p.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.BigEndian.Uint64(p.b[p.off:])
	p.off += 8
	return int64(v)
}

func (p *payloadReader) u32() uint32 {
	if p.err != nil {
		return 0
	}
	if p.off+4 > len(p.b) {
		p.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.BigEndian.Uint32(p.b[p.off:])
	p.off += 4
	return v
}

func (p *payloadReader) bytes(n int) []byte {
	if p.err != nil {
		return nil
	}
	if n < 0 || p.off+n > len(p.b) {
		p.err = io.ErrUnexpectedEOF
		return nil
	}
	v := p.b[p.off : p.off+n]
	p.off += n
	return v
}

// decodePayload decodes a checksummed payload (type byte + body) into a
// Frame. Blob and Data fields are copied out of the input buffer.
func decodePayload(payload []byte) (Frame, error) {
	if len(payload) == 0 {
		return Frame{}, fmt.Errorf("distnet: empty frame")
	}
	f := Frame{Type: FrameType(payload[0])}
	p := &payloadReader{b: payload, off: 1}
	switch f.Type {
	case FrameData:
		m := &f.Msg
		m.Src = int(p.i64())
		m.Dst = int(p.i64())
		m.Tag = int(p.i64())
		m.Iter = int(p.i64())
		m.Epoch = int(p.i64())
		m.SentAt = math.Float64frombits(uint64(p.i64()))
		if n := p.u32(); n != nilData {
			// A float64 is 8 wire bytes: the count can never exceed the
			// remaining payload, so a lying header is caught before any
			// allocation proportional to it.
			raw := p.bytes(int(n) * 8)
			if p.err == nil {
				m.Data = make([]float64, n)
				for i := range m.Data {
					m.Data[i] = math.Float64frombits(binary.BigEndian.Uint64(raw[8*i:]))
				}
			}
		}
	case FrameHello:
		f.Rank = int(p.i64())
		f.Epoch = int(p.i64())
		f.Addr = string(p.bytes(int(p.u32())))
	case FrameConfig, FrameResult:
		f.Blob = append([]byte(nil), p.bytes(int(p.u32()))...)
	case FrameCheckpoint:
		f.Rank = int(p.i64())
		f.Blob = append([]byte(nil), p.bytes(int(p.u32()))...)
	case FrameBarrier:
		f.Seq = int(p.i64())
	case FrameHeartbeat, FrameShutdown:
		// No body.
	default:
		return Frame{}, fmt.Errorf("distnet: unknown frame type %d", payload[0])
	}
	if p.err != nil {
		return Frame{}, fmt.Errorf("distnet: truncated %v frame: %w", f.Type, p.err)
	}
	if p.off != len(payload) {
		return Frame{}, fmt.Errorf("distnet: %d trailing bytes after %v frame", len(payload)-p.off, f.Type)
	}
	return f, nil
}
