package distnet

// The fleet metrics plane: nodes push their whole obs registry (Prometheus
// text) to the coordinator over the existing control connection (FrameObs),
// and FleetObs merges the per-node snapshots into one aggregated exposition
// — every node's series re-labelled with job/node — served from a single
// /metrics endpoint, plus a JSON /fleet status view. One scrape target per
// cluster instead of P, with per-rank attribution preserved in labels.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"specomp/internal/obs"
	"specomp/internal/trace"
)

// Synthesized fleet-level metric names (the coordinator's own series,
// prepended to the aggregated exposition).
const (
	// MetricFleetNodes gauges how many nodes have pushed a snapshot.
	MetricFleetNodes = "specomp_fleet_nodes"
	// MetricFleetPushes counts snapshot pushes per node.
	MetricFleetPushes = "specomp_fleet_pushes_total"
	// MetricFleetSnapshotAge gauges each node's snapshot staleness (s).
	MetricFleetSnapshotAge = "specomp_fleet_snapshot_age_seconds"
)

// fleetNode is the latest snapshot state of one rank.
type fleetNode struct {
	text   []byte // latest Prometheus text snapshot, verbatim
	pushes int
	series int // samples in the latest snapshot
	last   time.Time
}

// FleetObs aggregates per-node metrics snapshots at the coordinator.
// Safe for concurrent use (the coordinator's event pump updates it while
// HTTP scrapes render it).
type FleetObs struct {
	mu    sync.Mutex
	job   string
	nodes map[int]*fleetNode
}

// NewFleetObs returns an empty aggregator for the given job name (may be
// empty; the coordinator fills it from the spec).
func NewFleetObs(job string) *FleetObs {
	return &FleetObs{job: job, nodes: make(map[int]*fleetNode)}
}

// SetJob fills the job label if none was set at construction.
func (f *FleetObs) SetJob(job string) {
	f.mu.Lock()
	if f.job == "" {
		f.job = job
	}
	f.mu.Unlock()
}

// Job returns the job label.
func (f *FleetObs) Job() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.job
}

// Update ingests one node's snapshot. Malformed snapshots are rejected
// whole, leaving the node's previous snapshot in place.
func (f *FleetObs) Update(rank int, snapshot []byte) error {
	samples, err := obs.ParseProm(bytes.NewReader(snapshot))
	if err != nil {
		return fmt.Errorf("distnet: rank %d snapshot: %w", rank, err)
	}
	f.mu.Lock()
	n := f.nodes[rank]
	if n == nil {
		n = &fleetNode{}
		f.nodes[rank] = n
	}
	n.text = append(n.text[:0], snapshot...)
	n.pushes++
	n.series = len(samples)
	n.last = time.Now()
	f.mu.Unlock()
	return nil
}

// Ranks returns the ranks that have pushed at least one snapshot, sorted.
func (f *FleetObs) Ranks() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ranksLocked()
}

func (f *FleetObs) ranksLocked() []int {
	out := make([]int, 0, len(f.nodes))
	for r := range f.nodes {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// snapshot copies the aggregation state out from under the lock.
func (f *FleetObs) snapshot() (job string, ranks []int, nodes map[int]fleetNode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	job = f.job
	ranks = f.ranksLocked()
	nodes = make(map[int]fleetNode, len(f.nodes))
	for r, n := range f.nodes {
		cp := *n
		cp.text = append([]byte(nil), n.text...)
		nodes[r] = cp
	}
	return job, ranks, nodes
}

// injectLabels adds pairs to a sample's label set, keeping keys sorted so
// the merged exposition stays deterministic.
func injectLabels(s obs.PromSample, extra ...obs.Label) obs.PromSample {
	all := make([]obs.Label, 0, len(s.LabelPairs)+len(extra))
	all = append(all, s.LabelPairs...)
	all = append(all, extra...)
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	s.LabelPairs = all
	s.Labels = obs.LabelString(all)
	return s
}

// Families renders the aggregation as parsed metric families: the
// coordinator's own fleet series first, then every node's families merged
// by name with job/node labels injected into each sample. Deterministic for
// a fixed set of snapshots: families sorted by name, node series in rank
// order. The scheduler merges many jobs' fleets family-wise from this (each
// job's samples stay distinct through their job label).
func (f *FleetObs) Families() ([]obs.PromFamily, error) {
	job, ranks, nodes := f.snapshot()
	jl := obs.L("job", job)

	fleet := []obs.PromFamily{
		{Name: MetricFleetNodes, Help: "Nodes that have pushed a metrics snapshot.", Type: "gauge",
			Samples: []obs.PromSample{injectLabels(obs.PromSample{Name: MetricFleetNodes, Value: float64(len(ranks))}, jl)}},
		{Name: MetricFleetPushes, Help: "Metrics snapshots received per node.", Type: "counter"},
		{Name: MetricFleetSnapshotAge, Help: "Age of each node's latest snapshot (s).", Type: "gauge"},
	}
	now := time.Now()
	for _, r := range ranks {
		n := nodes[r]
		nl := obs.L("node", fmt.Sprintf("%d", r))
		fleet[1].Samples = append(fleet[1].Samples,
			injectLabels(obs.PromSample{Name: MetricFleetPushes, Value: float64(n.pushes)}, jl, nl))
		fleet[2].Samples = append(fleet[2].Samples,
			injectLabels(obs.PromSample{Name: MetricFleetSnapshotAge, Value: now.Sub(n.last).Seconds()}, jl, nl))
	}

	// Merge the node families by name. Rank order means a family's samples
	// arrive node-by-node, already deterministic.
	merged := make(map[string]*obs.PromFamily)
	var order []string
	for _, r := range ranks {
		n := nodes[r]
		fams, err := obs.ParsePromFamilies(bytes.NewReader(n.text))
		if err != nil {
			return nil, fmt.Errorf("distnet: rank %d snapshot: %w", r, err)
		}
		nl := obs.L("node", fmt.Sprintf("%d", r))
		for _, fam := range fams {
			m := merged[fam.Name]
			if m == nil {
				m = &obs.PromFamily{Name: fam.Name, Help: fam.Help, Type: fam.Type}
				merged[fam.Name] = m
				order = append(order, fam.Name)
			}
			for _, s := range fam.Samples {
				m.Samples = append(m.Samples, injectLabels(s, jl, nl))
			}
		}
	}
	sort.Strings(order)
	out := fleet
	for _, name := range order {
		out = append(out, *merged[name])
	}
	return out, nil
}

// WriteProm renders the aggregated fleet exposition (see Families).
func (f *FleetObs) WriteProm(w *bytes.Buffer) error {
	fams, err := f.Families()
	if err != nil {
		return err
	}
	return obs.WriteFamilies(w, fams)
}

// FleetNodeStatus is one node's entry in the /fleet JSON view.
type FleetNodeStatus struct {
	Rank   int     `json:"rank"`
	Pushes int     `json:"pushes"`
	Series int     `json:"series"`
	AgeSec float64 `json:"age_sec"`
	Bytes  int     `json:"bytes"`
}

// FleetStatus is the /fleet JSON view.
type FleetStatus struct {
	Job   string            `json:"job"`
	Nodes []FleetNodeStatus `json:"nodes"`
}

// Status summarizes the aggregation state.
func (f *FleetObs) Status() FleetStatus {
	job, ranks, nodes := f.snapshot()
	st := FleetStatus{Job: job, Nodes: []FleetNodeStatus{}}
	now := time.Now()
	for _, r := range ranks {
		n := nodes[r]
		st.Nodes = append(st.Nodes, FleetNodeStatus{
			Rank: r, Pushes: n.pushes, Series: n.series,
			AgeSec: now.Sub(n.last).Seconds(), Bytes: len(n.text),
		})
	}
	return st
}

// Totals sums each metric across all nodes' latest snapshots, keyed by
// sample name (histogram _bucket series are skipped; their _sum/_count
// aggregate). The soak harness derives fleet-level series from this.
func (f *FleetObs) Totals() (map[string]float64, error) {
	_, ranks, nodes := f.snapshot()
	out := make(map[string]float64)
	for _, r := range ranks {
		samples, err := obs.ParseProm(bytes.NewReader(nodes[r].text))
		if err != nil {
			return nil, fmt.Errorf("distnet: rank %d snapshot: %w", r, err)
		}
		for _, s := range samples {
			if len(s.Name) > 7 && s.Name[len(s.Name)-7:] == "_bucket" {
				continue
			}
			out[s.Name] += s.Value
		}
	}
	return out, nil
}

// SelfCheck validates the aggregated exposition end to end: it renders
// WriteProm, re-parses it, and verifies that every rank in [0, procs)
// appears as a node label and that no two samples collide on (name, labels).
// This is the CI gate for the fleet plane.
func (f *FleetObs) SelfCheck(procs int) error {
	var buf bytes.Buffer
	if err := f.WriteProm(&buf); err != nil {
		return err
	}
	samples, err := obs.ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return fmt.Errorf("distnet: aggregated exposition does not re-parse: %w", err)
	}
	seen := make(map[string]bool, len(samples))
	nodesSeen := make(map[string]bool)
	for _, s := range samples {
		key := s.Name + "{" + s.Labels + "}"
		if seen[key] {
			return fmt.Errorf("distnet: duplicate series %s", key)
		}
		seen[key] = true
		for _, l := range s.LabelPairs {
			if l.Key == "node" {
				nodesSeen[l.Value] = true
			}
		}
	}
	for r := 0; r < procs; r++ {
		if !nodesSeen[fmt.Sprintf("%d", r)] {
			return fmt.Errorf("distnet: no series from rank %d in the aggregated exposition", r)
		}
	}
	return nil
}

// Handler serves the fleet plane over HTTP: /metrics (aggregated Prometheus
// exposition) and /fleet (JSON status).
func (f *FleetObs) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		if err := f.WriteProm(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	})
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(f.Status())
	})
	return mux
}

// FleetJournals converts a run's node reports into the per-node journals
// trace.FleetChromeEvents merges. Rank 0's clock is the reference: every
// other node is shifted by its measured offset to rank 0 (ClockOff[0] is
// the rank-0-minus-local estimate from that node's direct link — the full
// mesh guarantees one exists). Nodes without a journal are skipped.
func FleetJournals(reports []NodeReport) []trace.NodeJournal {
	var out []trace.NodeJournal
	for _, r := range reports {
		if len(r.Journal) == 0 {
			continue
		}
		offset := 0.0
		if r.Rank != 0 && len(r.ClockOff) > 0 {
			offset = r.ClockOff[0]
		}
		out = append(out, trace.NodeJournal{
			Rank:   r.Rank,
			Start:  r.StartUnix,
			Offset: offset,
			Events: r.Journal,
		})
	}
	return out
}
