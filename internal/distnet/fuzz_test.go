package distnet

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"specomp/internal/cluster"
)

// frameFor wraps a raw payload in a valid length prefix and CRC — the
// adversarial path into decodePayload with the transport checks passing.
func frameFor(payload []byte) []byte {
	buf := make([]byte, 0, len(payload)+8)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
}

// FuzzFrameDecode feeds arbitrary bytes to the frame decoder. The decoder
// must never panic and never over-allocate; whenever it does decode a
// frame, re-encoding and re-decoding must be stable.
//
// Run with: go test -fuzz=FuzzFrameDecode ./internal/distnet
func FuzzFrameDecode(f *testing.F) {
	// Seed corpus: one valid encoding of each frame type, plus raw junk.
	seeds := []Frame{
		{Type: FrameData, Msg: cluster.Message{Src: 0, Dst: 1, Tag: 1, Iter: 3, SentAt: 0.25, Data: []float64{1, 2, 3}}},
		{Type: FrameData, Msg: cluster.Message{Src: 2, Dst: cluster.Any, Tag: 2, Iter: -1}},
		{Type: FrameHello, Rank: -1, Epoch: 1, Addr: "127.0.0.1:9999"},
		{Type: FrameConfig, Blob: []byte(`{"rank":0}`)},
		{Type: FrameHeartbeat},
		{Type: FrameBarrier, Seq: 0},
		{Type: FrameCheckpoint, Rank: 3, Blob: []byte{1, 2, 3, 4}},
		{Type: FrameResult, Blob: []byte(`{"converged":true}`)},
		{Type: FrameShutdown},
	}
	for i := range seeds {
		var buf bytes.Buffer
		if _, err := writeFrame(&buf, nil, &seeds[i]); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add(frameFor([]byte{0xee, 0xaa}))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return // malformed input rejected: the property we want
		}
		// Decoded OK ⇒ the codec must be stable under re-encode/re-decode.
		var buf bytes.Buffer
		if _, err := writeFrame(&buf, nil, &got); err != nil {
			t.Fatalf("re-encoding decoded frame %+v: %v", got, err)
		}
		again, err := readFrame(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding frame %+v: %v", got, err)
		}
		if !frameEqualFuzz(got, again) {
			t.Fatalf("codec not stable:\n first %+v\nsecond %+v", got, again)
		}
	})
}

// frameEqualFuzz compares frames field by field, treating NaN payload
// elements bit-equal (reflect.DeepEqual would reject NaN == NaN).
func frameEqualFuzz(a, b Frame) bool {
	if a.Type != b.Type || a.Rank != b.Rank || a.Epoch != b.Epoch ||
		a.Addr != b.Addr || a.Seq != b.Seq || !bytes.Equal(a.Blob, b.Blob) {
		return false
	}
	am, bm := a.Msg, b.Msg
	if am.Src != bm.Src || am.Dst != bm.Dst || am.Tag != bm.Tag ||
		am.Iter != bm.Iter || am.Epoch != bm.Epoch {
		return false
	}
	if !sameFloat(am.SentAt, bm.SentAt) {
		return false
	}
	if (am.Data == nil) != (bm.Data == nil) || len(am.Data) != len(bm.Data) {
		return false
	}
	for i := range am.Data {
		if !sameFloat(am.Data[i], bm.Data[i]) {
			return false
		}
	}
	return true
}

func sameFloat(a, b float64) bool {
	return a == b || (a != a && b != b) // NaN bit patterns may differ; value-level NaN is enough
}
