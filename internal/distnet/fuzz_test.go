package distnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"

	"specomp/internal/cluster"
)

// frameFor wraps a raw payload in a valid length prefix and CRC — the
// adversarial path into decodePayload with the transport checks passing.
func frameFor(payload []byte) []byte {
	buf := make([]byte, 0, len(payload)+8)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
}

// FuzzFrameDecode feeds arbitrary bytes to the frame decoder. The decoder
// must never panic, never over-allocate, and every failure must land in
// exactly one class of the package error taxonomy; whenever it does decode
// a frame, re-encoding and re-decoding must be stable.
//
// Run with: go test -fuzz=FuzzFrameDecode ./internal/distnet
func FuzzFrameDecode(f *testing.F) {
	// Seed corpus: one valid encoding of each frame type, plus raw junk.
	seeds := []Frame{
		{Type: FrameData, Msg: cluster.Message{Src: 0, Dst: 1, Tag: 1, Iter: 3, SentAt: 0.25, Data: []float64{1, 2, 3}}},
		{Type: FrameData, Msg: cluster.Message{Src: 2, Dst: cluster.Any, Tag: 2, Iter: -1}},
		{Type: FrameHello, Rank: -1, Epoch: 1, Addr: "127.0.0.1:9999"},
		{Type: FrameHello, Rank: 4, Epoch: 2, Addr: "127.0.0.1:80", Caps: CapBatch | CapDelta},
		{Type: FrameConfig, Blob: []byte(`{"rank":0}`)},
		{Type: FrameHeartbeat},
		{Type: FrameBarrier, Seq: 0},
		{Type: FrameCheckpoint, Rank: 3, Blob: []byte{1, 2, 3, 4}},
		{Type: FrameResult, Blob: []byte(`{"converged":true}`)},
		{Type: FrameShutdown},
		{Type: FrameBatch, Batch: []cluster.Message{
			{Src: 0, Dst: 1, Tag: 1, Iter: 5, SentAt: 0.5, Data: []float64{1, 2}},
			{Src: 0, Dst: 1, Tag: 2, Iter: 5},
			{Src: 1, Dst: 0, Tag: 1, Iter: 6, Data: []float64{}},
		}},
	}
	for i := range seeds {
		var buf bytes.Buffer
		if _, err := writeFrame(&buf, nil, &seeds[i]); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add(frameFor([]byte{0xee, 0xaa}))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := readFrame(bytes.NewReader(data))
		if err != nil {
			// Malformed input rejected — but it must be rejected with exactly
			// one taxonomy class: clean close, truncation, or corruption. The
			// dial path retries on truncation and gives up on corruption, so
			// an error in both classes (or neither) breaks real control flow.
			clean := err == io.EOF
			truncated := errors.Is(err, io.ErrUnexpectedEOF)
			corrupt := errors.Is(err, ErrCorrupt)
			classes := 0
			for _, c := range []bool{clean, truncated, corrupt} {
				if c {
					classes++
				}
			}
			if classes != 1 {
				t.Fatalf("decode error %v is in %d taxonomy classes, want exactly 1", err, classes)
			}
			return
		}
		// Decoded OK ⇒ the codec must be stable under re-encode/re-decode.
		var buf bytes.Buffer
		if _, err := writeFrame(&buf, nil, &got); err != nil {
			t.Fatalf("re-encoding decoded frame %+v: %v", got, err)
		}
		again, err := readFrame(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding frame %+v: %v", got, err)
		}
		if !frameEqualFuzz(got, again) {
			t.Fatalf("codec not stable:\n first %+v\nsecond %+v", got, again)
		}
	})
}

// frameEqualFuzz compares frames field by field, treating NaN payload
// elements bit-equal (reflect.DeepEqual would reject NaN == NaN).
func frameEqualFuzz(a, b Frame) bool {
	if a.Type != b.Type || a.Rank != b.Rank || a.Epoch != b.Epoch ||
		a.Caps != b.Caps || a.Addr != b.Addr || a.Seq != b.Seq ||
		!bytes.Equal(a.Blob, b.Blob) {
		return false
	}
	if !msgEqual(a.Msg, b.Msg) {
		return false
	}
	if (a.Batch == nil) != (b.Batch == nil) || len(a.Batch) != len(b.Batch) {
		return false
	}
	for i := range a.Batch {
		if !msgEqual(a.Batch[i], b.Batch[i]) {
			return false
		}
	}
	return true
}

func sameFloat(a, b float64) bool {
	return a == b || (a != a && b != b) // NaN bit patterns may differ; value-level NaN is enough
}
