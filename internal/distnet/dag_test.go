package distnet

// End-to-end pipeline (task-DAG) runs over the real socket transport: one
// stage per OS-visible rank, the chain dependency graph projected through
// the spec's stage placement, validated against the lockstep serial
// reference. The exact regime (zero tolerances, FW=1) must be bit-identical
// to Serial even with per-edge faults on the send path, because every
// broadcast is validated or repaired before it is sent.

import (
	"testing"
	"time"

	"specomp/internal/faults"
	"specomp/internal/netmodel"
	"specomp/internal/obs"
)

// TestFourNodePipelineExactUnderEdgeFaults: a 4-stage pipeline across 4
// nodes with seeded faults (duplicates + delay spikes — loss-free, so no
// iteration starves) scoped to the first two DAG edges only, with repair
// activity visible in the shipped journals.
func TestFourNodePipelineExactUnderEdgeFaults(t *testing.T) {
	spec := RunSpec{App: "pipeline", Procs: 4, MaxIter: 50, FW: 1,
		Width: 8, Seed: 11, Exact: true, Trace: true}
	coord, err := NewCoordinator(CoordConfig{Spec: spec, Timeout: 2 * time.Minute, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	spec = coord.Spec()

	model := faults.EdgeFaults{
		Clean: netmodel.Fixed{D: 0.0002},
		Faulty: faults.Duplicate{
			Prob: 0.25,
			Inner: faults.DelaySpikes{
				Prob: 0.3, ExtraMin: 0.001, ExtraMax: 0.004,
				Inner: netmodel.Fixed{D: 0.0002},
			},
		},
		Edges: []faults.Edge{{From: 0, To: 1}, {From: 1, To: 2}},
	}
	launchNodes(t, spec.Procs, func(rank int) NodeConfig {
		return NodeConfig{Coord: coord.Addr(), Faults: model, FaultSeed: int64(7 + rank)}
	})
	reports, err := coord.Wait()
	if err != nil {
		t.Fatal(err)
	}

	// Bit-exact against the serial reference despite speculation and faults.
	if err := VerifyPipeline(spec, reports, 0); err != nil {
		t.Error(err)
	}

	// The cheap downstream stages must have speculated on upstream rows and
	// repaired every imperfect prediction (zero tolerance).
	specs, repairs := 0, 0
	for _, rep := range reports {
		if rep.Rank != 0 && rep.SpecsMade == 0 {
			t.Errorf("downstream rank %d never speculated", rep.Rank)
		}
		specs += rep.SpecsMade
		repairs += rep.Repairs
	}
	if specs == 0 || repairs == 0 {
		t.Fatalf("exact pipeline made %d speculations, %d repairs; want both > 0", specs, repairs)
	}

	// Repair cascades are visible in the shipped cross-process journals.
	journals := FleetJournals(reports)
	if len(journals) != spec.Procs {
		t.Fatalf("only %d/%d nodes shipped a journal", len(journals), spec.Procs)
	}
	repairEvents := 0
	for _, j := range journals {
		for _, ev := range j.Events {
			if ev.Kind == obs.EvRepair {
				repairEvents++
			}
		}
	}
	if repairEvents == 0 {
		t.Error("no repair events in any node journal")
	}
}

// TestPipelinePlacementDistnet: a permuted stage placement travels in the
// spec, every node derives the identical rank-level graph, and the finals
// land on the placed ranks — still bit-exact.
func TestPipelinePlacementDistnet(t *testing.T) {
	spec := RunSpec{App: "pipeline", Procs: 3, MaxIter: 40, FW: 1,
		Width: 8, Seed: 5, Exact: true, Placement: []int{2, 0, 1}}
	coord, err := NewCoordinator(CoordConfig{Spec: spec, Timeout: time.Minute, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	spec = coord.Spec()

	// Seeded delay spikes let later frames overtake earlier ones, which is
	// what opens the history gaps downstream stages speculate across; a
	// uniform delay only shifts every arrival together and the engine
	// blocks at startup instead (the speculation assertion below would be
	// a loopback timing race).
	spikes := faults.DelaySpikes{
		Prob: 0.3, ExtraMin: 0.001, ExtraMax: 0.004,
		Inner: netmodel.Fixed{D: 0.0002},
	}
	launchNodes(t, spec.Procs, func(rank int) NodeConfig {
		return NodeConfig{Coord: coord.Addr(), Faults: spikes, FaultSeed: int64(3 + rank)}
	})
	reports, err := coord.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPipeline(spec, reports, 0); err != nil {
		t.Error(err)
	}
	// The source stage sits on rank 2 under this placement; it has no
	// in-edges, so it must not speculate — and its downstream (rank 0) must.
	for _, rep := range reports {
		switch rep.Rank {
		case 2:
			if rep.SpecsMade != 0 {
				t.Errorf("source rank 2 made %d speculations, want 0", rep.SpecsMade)
			}
		case 0:
			if rep.SpecsMade == 0 {
				t.Error("rank 0 (stage 1) never speculated on the source")
			}
		}
	}
}

// TestPipelineSpecValidation pins the Normalize contract for the new app
// kind: bad placements and degenerate shapes fail before the spec ships.
func TestPipelineSpecValidation(t *testing.T) {
	good := RunSpec{App: "pipeline", Procs: 3}
	if err := good.Normalize(); err != nil {
		t.Fatalf("minimal pipeline spec rejected: %v", err)
	}
	if good.Width != 16 {
		t.Errorf("width defaulted to %d, want 16", good.Width)
	}

	cases := map[string]RunSpec{
		"one proc":        {App: "pipeline", Procs: 1},
		"short placement": {App: "pipeline", Procs: 3, Placement: []int{0, 1}},
		"non-permutation": {App: "pipeline", Procs: 3, Placement: []int{0, 0, 1}},
		"out of range":    {App: "pipeline", Procs: 3, Placement: []int{0, 1, 5}},
	}
	for name, spec := range cases {
		spec := spec
		if err := spec.Normalize(); err == nil {
			t.Errorf("%s: Normalize accepted an invalid pipeline spec", name)
		}
	}
}
