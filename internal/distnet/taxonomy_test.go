package distnet

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"specomp/internal/cluster"
)

// The decoder's error taxonomy is load-bearing: io.ErrUnexpectedEOF means
// the *stream* died (retryable — the dial path redials on it), ErrCorrupt
// means the *content* is broken (fatal — retrying a desynchronized stream
// can only make things worse). These tests pin every boundary, including
// the truncated-exactly-at-the-CRC case that is all too easy to misfile as
// corruption.

func assertCorrupt(t *testing.T, err error) {
	t.Helper()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v is not ErrCorrupt", err)
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("error %v claims to be both corrupt and truncated", err)
	}
}

func assertTruncated(t *testing.T, err error) {
	t.Helper()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("error %v is not io.ErrUnexpectedEOF", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v claims to be both truncated and corrupt", err)
	}
}

func TestErrorTaxonomy(t *testing.T) {
	enc := encodeFrame(t, Frame{Type: FrameData, Msg: cluster.Message{
		Src: 1, Dst: 2, Tag: 1, Iter: 40, SentAt: 0.5,
		Data: []float64{1, 2, 3},
	}})
	// Layout landmarks inside enc: [0,4) length, [4, len-4) payload,
	// [len-4, len) CRC.
	crcStart := len(enc) - 4

	t.Run("clean close at frame boundary is io.EOF", func(t *testing.T) {
		if _, err := readFrame(bytes.NewReader(nil)); err != io.EOF {
			t.Fatalf("empty stream: got %v, want io.EOF", err)
		}
		var buf bytes.Buffer
		buf.Write(enc)
		if _, err := readFrame(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := readFrame(&buf); err != io.EOF {
			t.Fatalf("after last frame: got %v, want io.EOF", err)
		}
	})

	t.Run("every mid-frame truncation is ErrUnexpectedEOF", func(t *testing.T) {
		// Including the boundary cases: inside the length prefix, at the
		// payload/CRC boundary, and one byte into the CRC — a frame cut at
		// its checksum is a dead stream, not a corrupt peer.
		for n := 1; n < len(enc); n++ {
			_, err := readFrame(bytes.NewReader(enc[:n]))
			if err == nil {
				t.Fatalf("truncation to %d/%d bytes decoded", n, len(enc))
			}
			assertTruncated(t, err)
		}
	})

	t.Run("truncated exactly at CRC start", func(t *testing.T) {
		_, err := readFrame(bytes.NewReader(enc[:crcStart]))
		assertTruncated(t, err)
	})

	t.Run("payload corruption is ErrCorrupt", func(t *testing.T) {
		for i := 4; i < len(enc); i++ { // payload and CRC bytes
			bad := append([]byte(nil), enc...)
			bad[i] ^= 0x40
			_, err := readFrame(bytes.NewReader(bad))
			if err == nil {
				t.Fatalf("corrupting byte %d decoded", i)
			}
			assertCorrupt(t, err)
		}
	})

	t.Run("complete but malformed body is ErrCorrupt", func(t *testing.T) {
		cases := map[string][]byte{
			"unknown type":   frameFor([]byte{0xee}),
			"trailing bytes": frameFor(append([]byte{byte(FrameHeartbeat)}, 0xaa)),
			"truncated body": frameFor(append([]byte{byte(FrameBarrier)}, 1, 2, 3)), // seq needs 8 bytes, has 3
			"lying data len": frameFor(append(append([]byte{byte(FrameData)}, make([]byte, 48)...), 0x7f, 0xff, 0xff, 0xff)),
			"empty payload":  frameFor(nil),
			"zero length":    {0, 0, 0, 0},
		}
		for name, raw := range cases {
			_, err := readFrame(bytes.NewReader(raw))
			if err == nil {
				t.Fatalf("%s decoded", name)
			}
			assertCorrupt(t, err)
		}
	})

	t.Run("oversized length is ErrCorrupt", func(t *testing.T) {
		_, err := readFrame(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff}))
		assertCorrupt(t, err)
	})

	t.Run("every decode error is exactly one class", func(t *testing.T) {
		// Sweep prefixes of a two-frame stream plus every 1-byte corruption:
		// the union of everything above, asserting the trichotomy.
		stream := append(append([]byte(nil), enc...), enc...)
		for n := 0; n <= len(stream); n++ {
			r := bytes.NewReader(stream[:n])
			for {
				_, err := readFrame(r)
				if err == nil {
					continue
				}
				if err != io.EOF {
					one := errors.Is(err, ErrCorrupt) != errors.Is(err, io.ErrUnexpectedEOF)
					if !one {
						t.Fatalf("prefix %d: error %v is not exactly one of ErrCorrupt/ErrUnexpectedEOF", n, err)
					}
				}
				break
			}
		}
	})
}
