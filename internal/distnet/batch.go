package distnet

// Batch frames and the delta codec.
//
// A FrameBatch coalesces several cluster.Messages bound for the same peer
// into one wire frame, amortizing the length prefix, checksum, syscall and
// wakeup across the batch. Its body is
//
//	u32 count · count × entry
//	entry: i64 src, dst, tag, iter, epoch · f64 sentAt · u8 enc · u32 n|nil · body
//
// enc selects the payload body encoding:
//
//	enc 0 (raw)    body = n × f64
//	enc 1 (delta)  body = u32 elen · elen RLE bytes
//
// Delta coding exploits the paper's workload shape: consecutive sends on
// one (src, dst, tag) stream are successive iterates of the same boundary
// vector, so most float64 bits repeat. The encoder XORs the vector against
// the previous one on the stream and run-length-codes the zero bytes; the
// entry is emitted as a delta only when that is strictly smaller than the
// 8n raw bytes, so pathological inputs cost one comparison and nothing on
// the wire.
//
// Stream state discipline: encoder and decoder each track, per stream, the
// last non-empty vector seen in a *batch entry* (raw or delta — the base is
// the decoded value, so both sides stay in lockstep over the in-order TCP
// stream). Single FrameData frames and nil/empty payloads never touch the
// state. Delta entries are only legal on links where the receiver
// advertised CapDelta in its hello; a delta entry without a negotiated
// tracker or without a matching-length base is corrupt.

import (
	"encoding/binary"
	"math"
	"sync"

	"specomp/internal/cluster"
)

// batchPool recycles the message slices carried by outbound FrameBatch
// frames: the sender builds a batch from the pool, and the link's writer
// goroutine returns it after encoding.
var batchPool = sync.Pool{New: func() any { return new([]cluster.Message) }}

// getBatch returns an empty pooled message slice.
func getBatch() []cluster.Message {
	return (*(batchPool.Get().(*[]cluster.Message)))[:0]
}

// releaseBatch returns a batch slice to the pool, clearing its entries so
// pooled slices do not pin message payloads.
func releaseBatch(b []cluster.Message) {
	clear(b)
	b = b[:0]
	batchPool.Put(&b)
}

// batchEntryMin is the smallest possible encoded batch entry (header + enc
// byte + length word, nil payload). The decoder bounds a frame's claimed
// entry count by it before decoding anything.
const batchEntryMin = 6*8 + 1 + 4

// Batch entry payload encodings.
const (
	encRaw   = 0
	encDelta = 1
)

// streamKey identifies one sender→receiver message stream for delta coding.
type streamKey struct{ src, dst, tag int }

// deltaState is one side's per-stream vector bases plus codec scratch and
// (encoder side only) the link's compression instrumentation.
type deltaState struct {
	prev map[streamKey][]float64
	xor  []byte // 8n XOR residual scratch
	rle  []byte // RLE-coded residual scratch
	lo   *linkObs
}

func newDeltaState() *deltaState {
	return &deltaState{prev: make(map[streamKey][]float64)}
}

// note records data as the stream's new base, copying it into state-owned
// memory (callers reuse or adopt their buffers).
func (ds *deltaState) note(key streamKey, data []float64) {
	prev := ds.prev[key]
	if cap(prev) < len(data) {
		prev = make([]float64, len(data))
	}
	prev = prev[:len(data)]
	copy(prev, data)
	ds.prev[key] = prev
}

// rleAppend run-length-codes src onto dst as a sequence of ops
//
//	[u8 zeroRun][u8 litLen][litLen literal bytes]
//
// and returns the extended dst. Decoding replays ops until the output is
// full, so the encoding is self-delimiting given the known output size.
func rleAppend(dst, src []byte) []byte {
	for i := 0; i < len(src); {
		zeros := 0
		for i < len(src) && src[i] == 0 && zeros < 255 {
			zeros++
			i++
		}
		// Extend the literal run across isolated zero bytes: a lone zero
		// costs 1 literal byte inline vs 2 bytes of op overhead if split.
		start := i
		for i < len(src) && i-start < 255 {
			if src[i] == 0 && (i+1 >= len(src) || src[i+1] == 0) {
				break // a zero run worth its own op starts here
			}
			i++
		}
		dst = append(dst, byte(zeros), byte(i-start))
		dst = append(dst, src[start:i]...)
	}
	return dst
}

// rleExpand decodes src into out (whose length is the known decoded size).
// It reports false if src does not decode to exactly len(out) bytes.
func rleExpand(out, src []byte) bool {
	o := 0
	for i := 0; i < len(src); {
		if i+2 > len(src) {
			return false
		}
		zeros, lit := int(src[i]), int(src[i+1])
		i += 2
		if o+zeros+lit > len(out) || i+lit > len(src) {
			return false
		}
		clear(out[o : o+zeros])
		o += zeros
		copy(out[o:], src[i:i+lit])
		o += lit
		i += lit
	}
	return o == len(out)
}

// appendBatchEntry encodes one batch entry onto dst. A non-nil ds attempts
// delta coding against the entry's stream base and records the vector as
// the new base.
func appendBatchEntry(dst []byte, m *cluster.Message, ds *deltaState) []byte {
	dst = appendMsgHeader(dst, m)
	if m.Data == nil {
		return appendU32(append(dst, encRaw), nilData)
	}
	n := len(m.Data)
	if ds != nil && n > 0 {
		key := streamKey{m.Src, m.Dst, m.Tag}
		if prev := ds.prev[key]; len(prev) == n {
			// XOR residual vs the base, then RLE it.
			if cap(ds.xor) < 8*n {
				ds.xor = make([]byte, 8*n)
			}
			xb := ds.xor[:8*n]
			for i, v := range m.Data {
				binary.BigEndian.PutUint64(xb[8*i:], math.Float64bits(v)^math.Float64bits(prev[i]))
			}
			ds.rle = rleAppend(ds.rle[:0], xb)
			if len(ds.rle)+4 < 8*n { // strictly smaller than raw, or not worth it
				if ds.lo != nil {
					ds.lo.deltaEntries.Inc()
					ds.lo.deltaRatio.Observe(float64(len(ds.rle)+4) / float64(8*n))
				}
				dst = appendU32(append(dst, encDelta), uint32(n))
				dst = appendU32(dst, uint32(len(ds.rle)))
				dst = append(dst, ds.rle...)
				ds.note(key, m.Data)
				return dst
			}
			if ds.lo != nil {
				ds.lo.deltaFallback.Inc()
				ds.lo.deltaRatio.Observe(1)
			}
		}
		ds.note(key, m.Data)
	}
	dst = appendU32(append(dst, encRaw), uint32(n))
	for _, v := range m.Data {
		dst = appendI64(dst, int64(math.Float64bits(v)))
	}
	return dst
}

// decodeBatchEntry decodes the i-th entry of the current batch frame.
// Payload-exhaustion failures land in p.err (classified ErrCorrupt by the
// caller — the payload arrived complete); semantic failures return
// ErrCorrupt directly.
func (d *Decoder) decodeBatchEntry(p *payloadReader, i int) (cluster.Message, error) {
	var m cluster.Message
	decodeMsgHeader(p, &m)
	enc := p.u8()
	nw := p.u32()
	if p.err != nil {
		return m, nil
	}
	if nw == nilData {
		if enc != encRaw {
			return m, corruptf("batch entry %d: nil payload with enc %d", i, enc)
		}
		return m, nil
	}
	n := int(nw)
	switch enc {
	case encRaw:
		raw := p.bytes(n * 8)
		if p.err != nil {
			return m, nil
		}
		m.Data = d.row(i, n)
		for j := range m.Data {
			m.Data[j] = math.Float64frombits(binary.BigEndian.Uint64(raw[8*j:]))
		}
	case encDelta:
		if !d.Track || d.ds == nil {
			return m, corruptf("batch entry %d: delta entry on a link without CapDelta", i)
		}
		elen := int(p.u32())
		raw := p.bytes(elen)
		if p.err != nil {
			return m, nil
		}
		key := streamKey{m.Src, m.Dst, m.Tag}
		prev := d.ds.prev[key]
		if len(prev) != n {
			return m, corruptf("batch entry %d: delta entry without a %d-element base on stream %v", i, n, key)
		}
		if cap(d.ds.xor) < 8*n {
			d.ds.xor = make([]byte, 8*n)
		}
		xb := d.ds.xor[:8*n]
		if !rleExpand(xb, raw) {
			return m, corruptf("batch entry %d: RLE residual does not decode to %d bytes", i, 8*n)
		}
		m.Data = d.row(i, n)
		for j := range m.Data {
			m.Data[j] = math.Float64frombits(binary.BigEndian.Uint64(xb[8*j:]) ^ math.Float64bits(prev[j]))
		}
	default:
		return m, corruptf("batch entry %d: unknown payload encoding %d", i, enc)
	}
	if d.Track && n > 0 {
		if d.ds == nil {
			d.ds = newDeltaState()
		}
		d.ds.note(streamKey{m.Src, m.Dst, m.Tag}, m.Data)
	}
	return m, nil
}
