package distnet

import (
	"bytes"
	"math"
	"math/rand"
	"runtime"
	"runtime/debug"
	"testing"

	"specomp/internal/cluster"
)

// pipeCodec builds a connected Encoder/Decoder pair over one buffer, with
// matching delta negotiation on both ends.
func pipeCodec(delta bool) (*Encoder, *Decoder, *bytes.Buffer) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf, delta)
	dec := NewDecoder(&buf)
	dec.Track = delta
	return enc, dec, &buf
}

// randBatchMsg builds one batch-able message on a small set of streams so
// consecutive frames revisit streams (exercising delta bases).
func randBatchMsg(rng *rand.Rand, iter int) cluster.Message {
	m := cluster.Message{
		Src: rng.Intn(4), Dst: rng.Intn(4), Tag: rng.Intn(3) - 1,
		Iter: iter, Epoch: rng.Intn(3), SentAt: rng.Float64(),
	}
	switch rng.Intn(5) {
	case 0:
		// nil payload
	case 1:
		m.Data = []float64{}
	default:
		m.Data = make([]float64, 1+rng.Intn(40))
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
	}
	return m
}

func msgEqual(a, b cluster.Message) bool {
	if a.Src != b.Src || a.Dst != b.Dst || a.Tag != b.Tag ||
		a.Iter != b.Iter || a.Epoch != b.Epoch || !sameFloat(a.SentAt, b.SentAt) {
		return false
	}
	if (a.Data == nil) != (b.Data == nil) || len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if !sameFloat(a.Data[i], b.Data[i]) {
			return false
		}
	}
	return true
}

// TestBatchRoundTrip streams many random batch frames through a persistent
// Encoder/Decoder pair, raw and delta, checking every message survives
// byte-exactly and frames never leave residue in the buffer.
func TestBatchRoundTrip(t *testing.T) {
	for _, delta := range []bool{false, true} {
		name := "raw"
		if delta {
			name = "delta"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			enc, dec, buf := pipeCodec(delta)
			for frame := 0; frame < 300; frame++ {
				want := make([]cluster.Message, 1+rng.Intn(8))
				for i := range want {
					want[i] = randBatchMsg(rng, frame)
				}
				if err := enc.Encode(&Frame{Type: FrameBatch, Batch: want}); err != nil {
					t.Fatalf("frame %d: encode: %v", frame, err)
				}
				var got Frame
				if err := dec.Decode(&got); err != nil {
					t.Fatalf("frame %d: decode: %v", frame, err)
				}
				if got.Type != FrameBatch || len(got.Batch) != len(want) {
					t.Fatalf("frame %d: got %v with %d entries, want batch of %d", frame, got.Type, len(got.Batch), len(want))
				}
				for i := range want {
					if !msgEqual(got.Batch[i], want[i]) {
						t.Fatalf("frame %d entry %d mismatch:\n got %+v\nwant %+v", frame, i, got.Batch[i], want[i])
					}
				}
				if buf.Len() != 0 {
					t.Fatalf("frame %d: %d bytes left over", frame, buf.Len())
				}
			}
		})
	}
}

// TestBatchDeltaInterleavedWithSingles pins the state discipline: single
// FrameData frames on the same streams never touch delta bases, so deltas
// across them still decode.
func TestBatchDeltaInterleavedWithSingles(t *testing.T) {
	enc, dec, _ := pipeCodec(true)
	base := []float64{1, 2, 3, 4}
	next := []float64{1, 2, 3.5, 4}
	divergent := []float64{9, 9, 9, 9} // same stream, via FrameData: must NOT become the base
	send := func(f Frame) {
		t.Helper()
		if err := enc.Encode(&f); err != nil {
			t.Fatal(err)
		}
		var got Frame
		if err := dec.Decode(&got); err != nil {
			t.Fatal(err)
		}
		switch f.Type {
		case FrameBatch:
			for i := range f.Batch {
				if !msgEqual(got.Batch[i], f.Batch[i]) {
					t.Fatalf("entry %d mismatch: got %+v want %+v", i, got.Batch[i], f.Batch[i])
				}
			}
		case FrameData:
			if !msgEqual(got.Msg, f.Msg) {
				t.Fatalf("data mismatch: got %+v want %+v", got.Msg, f.Msg)
			}
		}
	}
	m := func(data []float64, iter int) cluster.Message {
		return cluster.Message{Src: 0, Dst: 1, Tag: 1, Iter: iter, Data: data}
	}
	send(Frame{Type: FrameBatch, Batch: []cluster.Message{m(base, 0)}})
	send(Frame{Type: FrameData, Msg: m(divergent, 1)}) // single: no state change
	send(Frame{Type: FrameBatch, Batch: []cluster.Message{m(next, 2)}})
}

// TestBatchDeltaSmaller verifies the payoff: consecutive near-identical
// vectors on one stream delta-code to materially fewer wire bytes than the
// raw encoding, while a fresh (baseless) or length-changed vector falls
// back to raw without error.
func TestBatchDeltaSmaller(t *testing.T) {
	vec := make([]float64, 256)
	for i := range vec {
		vec[i] = float64(i) * 0.25
	}
	frameBytes := func(enc *Encoder, buf *bytes.Buffer, dec *Decoder, data []float64, iter int) int {
		t.Helper()
		f := Frame{Type: FrameBatch, Batch: []cluster.Message{
			{Src: 0, Dst: 1, Tag: 1, Iter: iter, Data: data},
		}}
		if err := enc.Encode(&f); err != nil {
			t.Fatal(err)
		}
		n := buf.Len()
		var got Frame
		if err := dec.Decode(&got); err != nil {
			t.Fatal(err)
		}
		if !msgEqual(got.Batch[0], f.Batch[0]) {
			t.Fatalf("iter %d: payload mismatch", iter)
		}
		return n
	}

	enc, dec, buf := pipeCodec(true)
	first := frameBytes(enc, buf, dec, vec, 0) // no base yet: raw
	perturbed := append([]float64(nil), vec...)
	perturbed[7] += 1e-9
	second := frameBytes(enc, buf, dec, perturbed, 1) // delta vs base
	if second >= first/4 {
		t.Errorf("near-identical vector: delta frame %dB, want < ¼ of raw %dB", second, first)
	}

	// Length change: no matching base, falls back to raw.
	resized := vec[:100]
	third := frameBytes(enc, buf, dec, resized, 2)
	if third < 8*len(resized) {
		t.Errorf("resized vector: %dB frame cannot hold %d raw floats — fell into a bogus delta?", third, len(resized))
	}
}

// TestBatchDeltaIncompressibleFallsBack feeds vectors with nothing in
// common: the encoder must emit raw (delta would be larger), and the frame
// must stay within a small overhead of the raw payload.
func TestBatchDeltaIncompressibleFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	enc, dec, buf := pipeCodec(true)
	for iter := 0; iter < 4; iter++ {
		data := make([]float64, 128)
		for i := range data {
			data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
		}
		f := Frame{Type: FrameBatch, Batch: []cluster.Message{
			{Src: 0, Dst: 1, Tag: 1, Iter: iter, Data: data},
		}}
		if err := enc.Encode(&f); err != nil {
			t.Fatal(err)
		}
		if got, limit := buf.Len(), 8*len(data)+batchEntryMin+16; got > limit {
			t.Fatalf("iter %d: incompressible frame is %dB, want ≤ %dB (raw + framing)", iter, got, limit)
		}
		var out Frame
		if err := dec.Decode(&out); err != nil {
			t.Fatal(err)
		}
		if !msgEqual(out.Batch[0], f.Batch[0]) {
			t.Fatalf("iter %d: payload mismatch", iter)
		}
	}
}

// TestBatchCorruptCases drives the corrupt-batch taxonomy: every semantic
// violation must surface as ErrCorrupt (the payload arrived complete).
func TestBatchCorruptCases(t *testing.T) {
	entry := func(n int, enc byte, tail []byte) []byte {
		p := []byte{byte(FrameBatch), 0, 0, 0, 1}
		p = append(p, make([]byte, 48)...) // header: src..sentAt all zero
		p = append(p, enc)
		p = appendU32(p, uint32(n))
		return append(p, tail...)
	}
	cases := map[string][]byte{
		"empty batch":        {byte(FrameBatch), 0, 0, 0, 0},
		"lying entry count":  {byte(FrameBatch), 0, 0, 0, 200},
		"unknown encoding":   entry(0, 7, nil),
		"nil with delta enc": entry(-1, encDelta, nil),
		"delta without base": entry(2, encDelta, appendU32(nil, 2)[:4:4]),
		"short raw body":     entry(4, encRaw, make([]byte, 8)),
	}
	// "delta without base" needs its RLE bytes appended after the elen word.
	cases["delta without base"] = append(cases["delta without base"], 0, 0)
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := readFrame(bytes.NewReader(frameFor(payload)))
			if err == nil {
				t.Fatal("corrupt batch decoded successfully")
			}
			assertCorrupt(t, err)
		})
	}
}

// TestRLERoundTrip exercises the residual coder directly on adversarial
// byte patterns.
func TestRLERoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	patterns := [][]byte{
		{},
		make([]byte, 1024),           // all zeros
		bytes.Repeat([]byte{7}, 600), // no zeros, > 255 literal run
		{0, 1, 0, 2, 0, 0, 3, 0},
	}
	long := make([]byte, 2048)
	for i := range long {
		if rng.Intn(3) == 0 {
			long[i] = byte(rng.Intn(256))
		}
	}
	patterns = append(patterns, long)
	for i, src := range patterns {
		enc := rleAppend(nil, src)
		out := make([]byte, len(src))
		if !rleExpand(out, enc) {
			t.Fatalf("pattern %d: expand failed", i)
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("pattern %d: round trip mismatch", i)
		}
		// Truncated RLE streams must be detected, not over/under-fill.
		for cut := 0; cut < len(enc); cut++ {
			if rleExpand(out, enc[:cut]) && cut != 0 {
				if !bytes.Equal(out, src) {
					t.Fatalf("pattern %d: truncated stream expanded to wrong bytes", i)
				}
			}
		}
	}
}

// TestWireSteadyStateZeroAlloc is the codec's analogue of core's
// exact-malloc-delta test: after warm-up, a reusing Encoder/Decoder pair
// must move frames (single and batched, raw and delta) with zero heap
// allocations per frame. Growth in iteration count must not grow mallocs.
func TestWireSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	run := func(iters int, delta bool) uint64 {
		var buf bytes.Buffer
		enc := NewEncoder(&buf, delta)
		dec := NewDecoder(&buf)
		dec.Track = delta
		dec.Reuse = true
		batch := make([]cluster.Message, 4)
		data := make([][]float64, len(batch))
		for i := range batch {
			data[i] = make([]float64, 24)
			batch[i] = cluster.Message{Src: 0, Dst: 1, Tag: i, Data: data[i]}
		}
		single := cluster.Message{Src: 1, Dst: 0, Tag: 1, Data: make([]float64, 16)}
		var out Frame
		step := func(iter int) {
			for i := range batch {
				batch[i].Iter = iter
				data[i][iter%len(data[i])] = float64(iter)
			}
			if err := enc.Encode(&Frame{Type: FrameBatch, Batch: batch}); err != nil {
				t.Fatal(err)
			}
			if err := dec.Decode(&out); err != nil {
				t.Fatal(err)
			}
			single.Iter = iter
			if err := enc.Encode(&Frame{Type: FrameData, Msg: single}); err != nil {
				t.Fatal(err)
			}
			if err := dec.Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 50; i++ { // warm-up: buffers, delta bases, pool rows
			step(i)
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < iters; i++ {
			step(50 + i)
		}
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs
	}
	for _, delta := range []bool{false, true} {
		name := "raw"
		if delta {
			name = "delta"
		}
		t.Run(name, func(t *testing.T) {
			defer debug.SetGCPercent(debug.SetGCPercent(-1))
			const short, long = 200, 2000
			ok := false
			var dShort, dLong uint64
			for attempt := 0; attempt < 3 && !ok; attempt++ {
				dShort = run(short, delta)
				dLong = run(long, delta)
				// Mallocs must not scale with iterations: the whole budget is
				// the fixed warm-up slack (runtime background noise allowed).
				ok = dLong <= dShort+8
			}
			if !ok {
				t.Fatalf("steady-state allocations scale with frames: %d mallocs for %d iters vs %d for %d",
					dLong, long, dShort, short)
			}
		})
	}
}
