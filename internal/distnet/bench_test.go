package distnet

import (
	"bufio"
	"bytes"
	"net"
	"testing"

	"specomp/internal/cluster"
)

// BenchmarkFrameEncode measures the codec alone: one data frame with a
// 256-element payload into a reusable buffer.
func BenchmarkFrameEncode(b *testing.B) {
	f := Frame{Type: FrameData, Msg: cluster.Message{
		Src: 0, Dst: 1, Tag: 1, Iter: 100, SentAt: 1.5,
		Data: make([]float64, 256),
	}}
	var buf bytes.Buffer
	var scratch []byte
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if scratch, err = writeFrame(&buf, scratch, &f); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkFrameDecode measures the decode side of the same frame.
func BenchmarkFrameDecode(b *testing.B) {
	f := Frame{Type: FrameData, Msg: cluster.Message{
		Src: 0, Dst: 1, Tag: 1, Iter: 100, SentAt: 1.5,
		Data: make([]float64, 256),
	}}
	var buf bytes.Buffer
	if _, err := writeFrame(&buf, nil, &f); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := readFrame(bytes.NewReader(enc)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoopbackRoundTrip measures one data-frame round trip over a real
// 127.0.0.1 TCP connection — the latency floor under every distributed run
// on one machine, and the figure to compare against the simulator's
// modelled latencies.
func BenchmarkLoopbackRoundTrip(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()

	// Echo peer: read a frame, write it straight back.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		var scratch []byte
		for {
			f, err := readFrame(br)
			if err != nil {
				return
			}
			if scratch, err = writeFrame(conn, scratch, &f); err != nil {
				return
			}
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	f := Frame{Type: FrameData, Msg: cluster.Message{
		Src: 0, Dst: 1, Tag: 1, Iter: 7, SentAt: 0.5,
		Data: make([]float64, 64), // a typical strip-edge payload
	}}
	var scratch []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if scratch, err = writeFrame(conn, scratch, &f); err != nil {
			b.Fatal(err)
		}
		if _, err := readFrame(br); err != nil {
			b.Fatal(err)
		}
	}
}
