package distnet

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"testing"

	"specomp/internal/cluster"
	"specomp/internal/obs"
)

// BenchmarkFrameEncode measures the codec alone: one data frame with a
// 256-element payload through a persistent Encoder.
func BenchmarkFrameEncode(b *testing.B) {
	f := Frame{Type: FrameData, Msg: cluster.Message{
		Src: 0, Dst: 1, Tag: 1, Iter: 100, SentAt: 1.5,
		Data: make([]float64, 256),
	}}
	var buf bytes.Buffer
	enc := NewEncoder(&buf, false)
	if err := enc.Encode(&f); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := enc.Encode(&f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameDecode measures the decode side of the same frame through a
// persistent reusing Decoder — the data-plane reader configuration.
func BenchmarkFrameDecode(b *testing.B) {
	f := Frame{Type: FrameData, Msg: cluster.Message{
		Src: 0, Dst: 1, Tag: 1, Iter: 100, SentAt: 1.5,
		Data: make([]float64, 256),
	}}
	var buf bytes.Buffer
	if _, err := writeFrame(&buf, nil, &f); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	r := bytes.NewReader(enc)
	dec := NewDecoder(r)
	dec.Reuse = true
	var got Frame
	b.ReportAllocs()
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(enc)
		if err := dec.Decode(&got); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoopbackRoundTrip measures one data-frame round trip over a real
// 127.0.0.1 TCP connection — the latency floor under every distributed run
// on one machine, and the figure to compare against the simulator's
// modelled latencies. Both ends run the persistent Encoder/Decoder pair in
// reuse mode, so steady state is zero allocations per round trip (allocs/op
// counts every goroutine, echo peer included).
func BenchmarkLoopbackRoundTrip(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()

	// Echo peer: read a frame, write it straight back.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		dec := NewDecoder(bufio.NewReader(conn))
		dec.Reuse = true
		enc := NewEncoder(conn, false)
		var f Frame
		for {
			if err := dec.Decode(&f); err != nil {
				return
			}
			if err := enc.Encode(&f); err != nil {
				return
			}
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	enc := NewEncoder(conn, false)
	dec := NewDecoder(bufio.NewReader(conn))
	dec.Reuse = true

	f := Frame{Type: FrameData, Msg: cluster.Message{
		Src: 0, Dst: 1, Tag: 1, Iter: 7, SentAt: 0.5,
		Data: make([]float64, 64), // a typical strip-edge payload
	}}
	var resp Frame
	roundTrip := func() {
		if err := enc.Encode(&f); err != nil {
			b.Fatal(err)
		}
		if err := dec.Decode(&resp); err != nil {
			b.Fatal(err)
		}
	}
	// Warm up both ends' buffers so the timed region is steady state.
	for i := 0; i < 16; i++ {
		roundTrip()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundTrip()
	}
}

// benchLinkThroughput streams b.N 16-element messages one way over loopback
// TCP and waits for the receiver to acknowledge the full count, so the
// timed region covers the whole pipe: encode, syscalls, wakeups, decode.
// batchSize 1 writes one FrameData (and one syscall) per message — the
// per-message baseline the writer goroutine degenerates to without
// batching; batchSize k coalesces k messages per FrameBatch. A non-nil lo
// runs the sender with the wire-plane instrumentation attached, the way a
// live node's writer goroutine does.
func benchLinkThroughput(b *testing.B, batchSize int, lo *linkObs) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()

	// Receiver: drain to EOF counting messages, then acknowledge the count.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		dec := NewDecoder(bufio.NewReaderSize(conn, 64<<10))
		dec.Reuse = true
		var f Frame
		count := uint64(0)
		for {
			err := dec.Decode(&f)
			if err == io.EOF {
				break
			}
			if err != nil {
				return
			}
			switch f.Type {
			case FrameData:
				count++
			case FrameBatch:
				count += uint64(len(f.Batch))
			}
		}
		var ack [8]byte
		binary.BigEndian.PutUint64(ack[:], count)
		_, _ = conn.Write(ack[:])
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	enc := NewEncoder(conn, false)
	enc.instrumentDelta(lo)

	msg := cluster.Message{
		Src: 0, Dst: 1, Tag: 1, SentAt: 0.5,
		Data: make([]float64, 16), // the strip-edge payload of a small run
	}
	b.SetBytes(16 * 8)
	b.ReportAllocs()
	b.ResetTimer()
	if batchSize <= 1 {
		f := Frame{Type: FrameData, Msg: msg}
		for i := 0; i < b.N; i++ {
			f.Msg.Iter = i
			if err := enc.Encode(&f); err != nil {
				b.Fatal(err)
			}
			lo.noteFrame()
		}
	} else {
		f := Frame{Type: FrameBatch, Batch: make([]cluster.Message, 0, batchSize)}
		for i := 0; i < b.N; i++ {
			msg.Iter = i
			f.Batch = append(f.Batch, msg)
			if len(f.Batch) == batchSize || i == b.N-1 {
				if err := enc.Encode(&f); err != nil {
					b.Fatal(err)
				}
				f.Batch = f.Batch[:0]
				lo.noteFrame()
			}
		}
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		b.Fatal(err)
	}
	var ack [8]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if got := binary.BigEndian.Uint64(ack[:]); got != uint64(b.N) {
		b.Fatalf("receiver counted %d messages, want %d", got, b.N)
	}
}

// BenchmarkLinkThroughput compares per-message framing against batch
// framing on one TCP link; the batched/frames ratio is the wire-plane
// speedup batching buys (the acceptance floor is 2×).
func BenchmarkLinkThroughput(b *testing.B) {
	b.Run("frames", func(b *testing.B) { benchLinkThroughput(b, 1, nil) })
	for _, size := range []int{8, 32} {
		b.Run(fmt.Sprintf("batched%d", size), func(b *testing.B) { benchLinkThroughput(b, size, nil) })
	}
	// The instrumented variant: same 32-message batches with a live linkObs
	// attached to the sender. Its allocs/op must match the plain run — the
	// observability plane is not allowed to put allocations on the data path.
	b.Run("batched32obs", func(b *testing.B) {
		reg := obs.NewRegistry()
		benchLinkThroughput(b, 32, newWireObs(reg, 0, 2).link(1))
	})
}

// BenchmarkWireInstrumentation measures the wire-plane metric hooks
// themselves, enabled against nil, exercising exactly the calls a node's
// send/writer/deliver path makes per message. Both variants must report
// 0 allocs/op — the nil fast path because it does nothing, the enabled path
// because counters, gauges and histograms mutate in place.
func BenchmarkWireInstrumentation(b *testing.B) {
	run := func(b *testing.B, w *wireObs) {
		lo := w.link(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo.setQueueDepth(i & 63)
			lo.noteFrame()
			lo.observeLatency(0.0003)
			w.noteFlush(flushMsgs, 32)
		}
	}
	b.Run("enabled", func(b *testing.B) { run(b, newWireObs(obs.NewRegistry(), 0, 2)) })
	b.Run("nil", func(b *testing.B) { run(b, nil) })
}
