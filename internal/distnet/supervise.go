package distnet

// Node supervision: keep a node process alive across crashes. The
// supervisor owns one child process slot; when the child dies it respawns
// it with a bumped incarnation epoch and capped exponential backoff, and
// gives up with ErrRespawnBudget once the respawn budget is spent. The
// epoch is the thread connecting supervision to the runtime's rejoin path:
// a respawned child says hello with epoch > 0, which is what lets it
// reclaim its old rank (coord.go) and replace its stale peer links
// (node.go).
//
//	start(0) ──exit 0──▶ done (nil)
//	   │
//	   └─exit != 0──▶ backoff ──▶ start(epoch+1) ──▶ …
//	                     │
//	                     └─respawns == MaxRespawns ⇒ done (ErrRespawnBudget)
//
// Stop short-circuits the machine: the current child is killed and its
// exit is treated as deliberate, not a crash.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"sync"
	"time"
)

// ErrRespawnBudget reports that a supervised node kept dying until its
// respawn budget ran out.
var ErrRespawnBudget = errors.New("distnet: respawn budget exhausted")

// SuperviseConfig parameterizes one supervised node slot.
type SuperviseConfig struct {
	// Start builds the child command for the given incarnation epoch (0 on
	// first launch). The supervisor calls cmd.Start/Wait itself. Required.
	Start func(epoch int) (*exec.Cmd, error)
	// MaxRespawns bounds how many times a crashed child is relaunched
	// (default 3).
	MaxRespawns int
	// BackoffMin and BackoffMax bound the capped exponential backoff
	// between a crash and the respawn (defaults 100ms and 2s).
	BackoffMin, BackoffMax time.Duration
	// Logf, when non-nil, receives lifecycle lines.
	Logf func(format string, args ...any)
}

// Supervisor runs the supervision loop for one node slot.
type Supervisor struct {
	cfg SuperviseConfig

	mu       sync.Mutex
	cmd      *exec.Cmd
	epoch    int
	respawns int
	stopped  bool

	done chan struct{}
	err  error // final outcome, valid after done closes
}

// Supervise launches the epoch-0 child and begins supervising it.
func Supervise(cfg SuperviseConfig) (*Supervisor, error) {
	if cfg.Start == nil {
		return nil, fmt.Errorf("distnet: SuperviseConfig.Start is required")
	}
	if cfg.MaxRespawns <= 0 {
		cfg.MaxRespawns = 3
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 100 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	s := &Supervisor{cfg: cfg, done: make(chan struct{})}
	cmd, err := s.launch(0)
	if err != nil {
		return nil, err
	}
	s.cmd = cmd
	go s.loop()
	return s, nil
}

func (s *Supervisor) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Supervisor) launch(epoch int) (*exec.Cmd, error) {
	cmd, err := s.cfg.Start(epoch)
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("distnet: starting supervised child (epoch %d): %w", epoch, err)
	}
	return cmd, nil
}

// loop waits on the current child and respawns crashes until the child
// exits cleanly, Stop is called, or the budget runs out.
func (s *Supervisor) loop() {
	defer close(s.done)
	for {
		s.mu.Lock()
		cmd := s.cmd
		s.mu.Unlock()
		waitErr := cmd.Wait()

		s.mu.Lock()
		if s.stopped {
			// Deliberate termination: the child's exit status (including the
			// kill signal Stop sent) is not a verdict on the node.
			s.mu.Unlock()
			return
		}
		if waitErr == nil {
			s.mu.Unlock()
			return // clean exit: the node finished its run
		}
		if s.respawns >= s.cfg.MaxRespawns {
			s.err = fmt.Errorf("distnet: node died %d times, last exit: %v: %w",
				s.respawns+1, waitErr, ErrRespawnBudget)
			s.mu.Unlock()
			return
		}
		s.respawns++
		s.epoch++
		epoch, respawns := s.epoch, s.respawns
		s.mu.Unlock()

		backoff := s.cfg.BackoffMin << (respawns - 1)
		if backoff > s.cfg.BackoffMax || backoff <= 0 {
			backoff = s.cfg.BackoffMax
		}
		s.logf("supervised node died (%v); respawn %d/%d with epoch %d after %v",
			waitErr, respawns, s.cfg.MaxRespawns, epoch, backoff)
		time.Sleep(backoff)

		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			return
		}
		cmd, err := s.launch(epoch)
		if err != nil {
			s.err = err
			s.mu.Unlock()
			return
		}
		s.cmd = cmd
		s.mu.Unlock()
	}
}

// Kill SIGKILLs the current child — the fault-injection entry point. The
// supervision loop sees the death and respawns within the budget.
func (s *Supervisor) Kill() {
	s.mu.Lock()
	cmd := s.cmd
	s.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		_ = cmd.Process.Kill()
	}
}

// Stop terminates supervision: the current child is killed and no respawn
// follows. Wait still reports any failure latched before the stop.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	s.stopped = true
	cmd := s.cmd
	s.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		_ = cmd.Process.Kill()
	}
}

// Wait blocks until supervision ends and returns the final outcome: nil
// after a clean child exit or a Stop, the launch error or budget-exhaustion
// error otherwise.
func (s *Supervisor) Wait() error {
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Respawns reports how many times the child has been relaunched.
func (s *Supervisor) Respawns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.respawns
}

// Epoch reports the current child's incarnation epoch.
func (s *Supervisor) Epoch() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// PrefixWriter tags every line written through it with a fixed prefix, so
// interleaved child outputs stay attributable ("[node 2] …"). Partial lines
// are buffered until their newline arrives; Flush emits a buffered tail.
// Safe for concurrent writers (stdout and stderr of one child share one).
type PrefixWriter struct {
	mu     sync.Mutex
	w      io.Writer
	prefix []byte
	buf    []byte
}

func NewPrefixWriter(w io.Writer, prefix string) *PrefixWriter {
	return &PrefixWriter{w: w, prefix: []byte(prefix)}
}

func (p *PrefixWriter) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buf = append(p.buf, b...)
	for {
		i := bytes.IndexByte(p.buf, '\n')
		if i < 0 {
			return len(b), nil
		}
		line := p.buf[:i+1]
		if _, err := p.w.Write(p.prefix); err != nil {
			return len(b), err
		}
		if _, err := p.w.Write(line); err != nil {
			return len(b), err
		}
		p.buf = p.buf[i+1:]
	}
}

// Flush emits any buffered partial line (with a newline so the prefix of
// the next writer starts a fresh line).
func (p *PrefixWriter) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.buf) == 0 {
		return nil
	}
	if _, err := p.w.Write(p.prefix); err != nil {
		return err
	}
	if _, err := p.w.Write(append(p.buf, '\n')); err != nil {
		return err
	}
	p.buf = nil
	return nil
}
