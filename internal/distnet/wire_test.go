package distnet

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"specomp/internal/cluster"
)

// randFrame builds a random frame of a random type; the property test
// round-trips it through the codec.
func randFrame(rng *rand.Rand) Frame {
	types := []FrameType{
		FrameData, FrameHello, FrameConfig, FrameHeartbeat,
		FrameBarrier, FrameCheckpoint, FrameResult, FrameShutdown,
		FrameBatch, FrameObs,
	}
	f := Frame{Type: types[rng.Intn(len(types))]}
	randBlob := func() []byte {
		b := make([]byte, rng.Intn(256))
		rng.Read(b)
		return b
	}
	randMsg := func() cluster.Message {
		m := cluster.Message{
			Src:    rng.Intn(64) - 1, // cluster.Any = -1 must survive
			Dst:    rng.Intn(64) - 1,
			Tag:    rng.Intn(8) - 1,
			Iter:   rng.Intn(4096) - 2, // negative iters appear in control msgs
			Epoch:  rng.Intn(8),
			SentAt: rng.NormFloat64(),
		}
		switch rng.Intn(3) {
		case 0:
			// nil payload (engine barrier/rejoin-ack messages)
		case 1:
			m.Data = []float64{} // empty-but-non-nil must also survive
		default:
			m.Data = make([]float64, 1+rng.Intn(300))
			for i := range m.Data {
				switch rng.Intn(8) {
				case 0:
					m.Data[i] = math.Inf(1)
				case 1:
					m.Data[i] = 0
				default:
					m.Data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
				}
			}
		}
		return m
	}
	switch f.Type {
	case FrameData:
		f.Msg = randMsg()
	case FrameBatch:
		f.Batch = make([]cluster.Message, 1+rng.Intn(8))
		for i := range f.Batch {
			f.Batch[i] = randMsg()
		}
	case FrameHello:
		f.Rank = rng.Intn(18) - 2 // -1 = unassigned must survive
		f.Epoch = rng.Intn(5)
		f.Addr = string(randBlob())
		f.Caps = rng.Uint32() & (CapBatch | CapDelta | CapObs)
	case FrameConfig, FrameResult:
		f.Blob = randBlob()
	case FrameCheckpoint, FrameObs:
		f.Rank = rng.Intn(16)
		f.Blob = randBlob()
	case FrameBarrier:
		f.Seq = rng.Intn(100) - 1
	case FrameHeartbeat:
		if rng.Intn(2) == 0 {
			// Timestamped beacon (CapObs links). Clock[0] must be non-zero —
			// zero means "no tail" and encodes to the empty legacy beacon.
			f.Clock = [3]float64{
				1 + rng.Float64()*1e9, rng.Float64() * 1e9, rng.Float64() * 1e9,
			}
		}
	}
	return f
}

// frameEqual compares frames treating nil and empty blobs/data as distinct
// for Msg.Data (the engine cares) but identical for Blob (it does not).
func frameEqual(a, b Frame) bool {
	if len(a.Blob) == 0 && len(b.Blob) == 0 {
		a.Blob, b.Blob = nil, nil
	}
	return reflect.DeepEqual(a, b)
}

func TestFrameRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var buf bytes.Buffer
	var scratch []byte
	for i := 0; i < 2000; i++ {
		want := randFrame(rng)
		buf.Reset()
		var err error
		scratch, err = writeFrame(&buf, scratch, &want)
		if err != nil {
			t.Fatalf("frame %d (%v): write: %v", i, want.Type, err)
		}
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d (%v): read: %v", i, want.Type, err)
		}
		if !frameEqual(got, want) {
			t.Fatalf("frame %d: round trip mismatch\n got %+v\nwant %+v", i, got, want)
		}
		if buf.Len() != 0 {
			t.Fatalf("frame %d: %d bytes left over after decode", i, buf.Len())
		}
	}
}

func TestFrameStreamRoundTrip(t *testing.T) {
	// Many frames back to back through one buffer, as on a real socket.
	rng := rand.New(rand.NewSource(11))
	frames := make([]Frame, 200)
	var buf bytes.Buffer
	var scratch []byte
	for i := range frames {
		frames[i] = randFrame(rng)
		var err error
		if scratch, err = writeFrame(&buf, scratch, &frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !frameEqual(got, want) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	if _, err := readFrame(&buf); err != io.EOF {
		t.Fatalf("expected clean EOF after last frame, got %v", err)
	}
}

// encodeFrame is a test helper returning one encoded frame.
func encodeFrame(t *testing.T, f Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := writeFrame(&buf, nil, &f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadFrameCorruptAndTruncated(t *testing.T) {
	msg := Frame{Type: FrameData, Msg: cluster.Message{
		Src: 1, Dst: 2, Tag: 1, Iter: 40, SentAt: 0.5,
		Data: []float64{1, 2, 3},
	}}
	enc := encodeFrame(t, msg)

	t.Run("every truncation errors", func(t *testing.T) {
		for n := 1; n < len(enc); n++ {
			_, err := readFrame(bytes.NewReader(enc[:n]))
			if err == nil {
				t.Fatalf("truncation to %d/%d bytes decoded successfully", n, len(enc))
			}
			if err == io.EOF && n >= 4 {
				t.Fatalf("mid-frame truncation to %d bytes reported clean EOF", n)
			}
		}
	})
	t.Run("every single-byte corruption errors", func(t *testing.T) {
		// Flipping any payload or CRC byte must fail the checksum; flipping a
		// length byte must fail length/CRC/truncation checks. Never a panic.
		for i := range enc {
			bad := append([]byte(nil), enc...)
			bad[i] ^= 0x40
			if _, err := readFrame(bytes.NewReader(bad)); err == nil {
				t.Fatalf("corrupting byte %d decoded successfully", i)
			}
		}
	})
	t.Run("oversized length refused before allocation", func(t *testing.T) {
		hdr := []byte{0xff, 0xff, 0xff, 0xff}
		_, err := readFrame(bytes.NewReader(hdr))
		if err == nil || !strings.Contains(err.Error(), "MaxFrame") {
			t.Fatalf("oversized frame: got %v, want MaxFrame error", err)
		}
	})
	t.Run("lying data count refused", func(t *testing.T) {
		// A valid CRC over a payload whose float count exceeds its bytes.
		payload := []byte{byte(FrameData)}
		for i := 0; i < 6; i++ { // src,dst,tag,iter,epoch,sentAt
			payload = append(payload, make([]byte, 8)...)
		}
		payload = append(payload, 0x7f, 0xff, 0xff, 0xff) // claims ~2G floats
		bad := frameFor(payload)
		if _, err := readFrame(bytes.NewReader(bad)); err == nil {
			t.Fatal("lying data count decoded successfully")
		}
	})
	t.Run("unknown type refused", func(t *testing.T) {
		bad := frameFor([]byte{0xee})
		if _, err := readFrame(bytes.NewReader(bad)); err == nil {
			t.Fatal("unknown frame type decoded successfully")
		}
	})
	t.Run("trailing garbage refused", func(t *testing.T) {
		bad := frameFor(append([]byte{byte(FrameHeartbeat)}, 0xaa))
		if _, err := readFrame(bytes.NewReader(bad)); err == nil {
			t.Fatal("heartbeat with trailing bytes decoded successfully")
		}
	})
	t.Run("oversized encode refused", func(t *testing.T) {
		huge := Frame{Type: FrameResult, Blob: make([]byte, MaxFrame+1)}
		var buf bytes.Buffer
		if _, err := writeFrame(&buf, nil, &huge); err == nil {
			t.Fatal("oversized frame encoded successfully")
		}
	})
}

func TestFrameTypeString(t *testing.T) {
	for ft := FrameData; ft < frameTypeEnd; ft++ {
		if s := ft.String(); strings.HasPrefix(s, "frame(") {
			t.Errorf("frame type %d has no name", ft)
		}
	}
	if s := FrameType(0xee).String(); s != "frame(238)" {
		t.Errorf("unknown frame type string = %q", s)
	}
}
