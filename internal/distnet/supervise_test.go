package distnet

import (
	"bytes"
	"errors"
	"os/exec"
	"sync"
	"testing"
	"time"
)

// shCmd builds a Start hook running one shell command, recording the epoch
// of every launch.
func shCmd(script string, mu *sync.Mutex, epochs *[]int) func(epoch int) (*exec.Cmd, error) {
	return func(epoch int) (*exec.Cmd, error) {
		if mu != nil {
			mu.Lock()
			*epochs = append(*epochs, epoch)
			mu.Unlock()
		}
		return exec.Command("sh", "-c", script), nil
	}
}

func TestSupervisorCleanExit(t *testing.T) {
	var mu sync.Mutex
	var epochs []int
	s, err := Supervise(SuperviseConfig{Start: shCmd("exit 0", &mu, &epochs)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(); err != nil {
		t.Fatalf("clean exit reported %v", err)
	}
	if s.Respawns() != 0 {
		t.Errorf("clean exit triggered %d respawns", s.Respawns())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(epochs) != 1 || epochs[0] != 0 {
		t.Errorf("launch epochs = %v, want [0]", epochs)
	}
}

func TestSupervisorExhaustsRespawnBudget(t *testing.T) {
	var mu sync.Mutex
	var epochs []int
	s, err := Supervise(SuperviseConfig{
		Start:       shCmd("exit 3", &mu, &epochs),
		MaxRespawns: 2,
		BackoffMin:  time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Wait()
	if !errors.Is(err, ErrRespawnBudget) {
		t.Fatalf("want ErrRespawnBudget, got %v", err)
	}
	if s.Respawns() != 2 {
		t.Errorf("respawns = %d, want 2", s.Respawns())
	}
	// Every relaunch must carry a strictly bumped incarnation epoch — that
	// is what lets the rejoin path distinguish the new process from stale
	// packets of the dead one.
	mu.Lock()
	defer mu.Unlock()
	want := []int{0, 1, 2}
	if len(epochs) != len(want) {
		t.Fatalf("launch epochs = %v, want %v", epochs, want)
	}
	for i := range want {
		if epochs[i] != want[i] {
			t.Fatalf("launch epochs = %v, want %v", epochs, want)
		}
	}
}

func TestSupervisorKillTriggersRespawn(t *testing.T) {
	var mu sync.Mutex
	var epochs []int
	s, err := Supervise(SuperviseConfig{
		Start:      shCmd("sleep 60", &mu, &epochs),
		BackoffMin: time.Millisecond,
		BackoffMax: 4 * time.Millisecond,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Kill() // the fault-injection entry point: SIGKILL the live child
	deadline := time.Now().Add(10 * time.Second)
	for s.Respawns() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("kill never triggered a respawn")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if e := s.Epoch(); e < 1 {
		t.Errorf("post-respawn epoch = %d, want >= 1", e)
	}
	s.Stop()
	if err := s.Wait(); err != nil {
		t.Errorf("stop after respawn reported %v", err)
	}
}

func TestSupervisorStopIsNotACrash(t *testing.T) {
	s, err := Supervise(SuperviseConfig{Start: shCmd("sleep 60", nil, nil)})
	if err != nil {
		t.Fatal(err)
	}
	s.Stop()
	if err := s.Wait(); err != nil {
		t.Fatalf("deliberate stop reported %v", err)
	}
	if s.Respawns() != 0 {
		t.Errorf("stop triggered %d respawns", s.Respawns())
	}
}

func TestPrefixWriterTagsLines(t *testing.T) {
	var out bytes.Buffer
	w := NewPrefixWriter(&out, "[node 2] ")

	// Partial lines buffer until their newline arrives, even across writes.
	w.Write([]byte("hel"))
	w.Write([]byte("lo\nwor"))
	if got := out.String(); got != "[node 2] hello\n" {
		t.Fatalf("after partial writes: %q", got)
	}
	// A single write holding several lines prefixes each one.
	w.Write([]byte("ld\na\nb\n"))
	want := "[node 2] hello\n[node 2] world\n[node 2] a\n[node 2] b\n"
	if got := out.String(); got != want {
		t.Fatalf("multi-line write: %q, want %q", got, want)
	}
	// Flush publishes a trailing partial line with its own newline.
	w.Write([]byte("tail"))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != want+"[node 2] tail\n" {
		t.Fatalf("after flush: %q", got)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("empty flush: %v", err)
	}
}
