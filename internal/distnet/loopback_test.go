package distnet

// Multi-process loopback smoke: a real coordinator in the test process and
// one real OS process per node (the test binary re-executed in helper
// mode), all over 127.0.0.1 — the closest a test gets to the deployment
// shape without a second machine.

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"specomp/internal/apps/heat"
)

const (
	helperEnv = "SPECOMP_NODE_HELPER"
	coordEnv  = "SPECOMP_COORD_ADDR"
	epochEnv  = "SPECOMP_NODE_EPOCH"    // incarnation epoch (supervised respawns)
	hbEnv     = "SPECOMP_NODE_HB_TO_MS" // heartbeat staleness window, ms
)

// TestHelperSpecnode is not a test: it is the node-process body the
// loopback tests re-execute the test binary into. It does nothing unless
// the helper environment variable marks this process as a node.
func TestHelperSpecnode(t *testing.T) {
	if os.Getenv(helperEnv) != "1" {
		t.Skip("helper process body, not a test")
	}
	cfg := NodeConfig{
		Coord:    os.Getenv(coordEnv),
		HTTPAddr: "127.0.0.1:0",
	}
	if v := os.Getenv(epochEnv); v != "" {
		cfg.Epoch, _ = strconv.Atoi(v)
	}
	if v := os.Getenv(hbEnv); v != "" {
		ms, _ := strconv.Atoi(v)
		cfg.HeartbeatTimeout = time.Duration(ms) * time.Millisecond
	}
	res, err := RunNode(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper node (epoch %d): %v\n", cfg.Epoch, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "helper node rank %d (epoch %d) done after %v\n", res.Rank, cfg.Epoch, res.Wall)
	os.Exit(0)
}

// spawnNodeProcess launches one node as a separate OS process.
func spawnNodeProcess(t *testing.T, coordAddr string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperSpecnode$", "-test.v")
	cmd.Env = append(os.Environ(), helperEnv+"=1", coordEnv+"="+coordAddr)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawning node process: %v", err)
	}
	return cmd
}

func TestLoopbackHeatMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke is not -short")
	}
	spec := RunSpec{App: "heat", Procs: 4, MaxIter: 50, FW: 2, Theta: 1e-3, Rows: 24, Cols: 16}
	coord, err := NewCoordinator(CoordConfig{Spec: spec, Timeout: 2 * time.Minute, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	spec = coord.Spec()

	procs := make([]*exec.Cmd, spec.Procs)
	for i := range procs {
		procs[i] = spawnNodeProcess(t, coord.Addr())
	}
	reports, err := coord.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i, cmd := range procs {
		if werr := cmd.Wait(); werr != nil {
			t.Errorf("node process %d: %v", i, werr)
		}
	}

	// Convergence must match the serial reference within the speculation
	// tolerance — across real process boundaries.
	serial := heat.DefaultGrid(spec.Rows, spec.Cols).SerialRun(spec.MaxIter)
	field := assembleHeat(t, spec, reports)
	if d := heat.MaxDiff(field, serial); d > 0.5 {
		t.Errorf("multi-process field deviates %g from serial reference", d)
	}
	for _, rep := range reports {
		if rep.Iters != spec.MaxIter {
			t.Errorf("rank %d ran %d iters, want %d", rep.Rank, rep.Iters, spec.MaxIter)
		}
		if rep.HTTP == "" {
			t.Errorf("rank %d served no obs endpoint", rep.Rank)
		}
		if rep.MsgsSent == 0 {
			t.Errorf("rank %d sent no messages", rep.Rank)
		}
	}
}
