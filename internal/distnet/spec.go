package distnet

// RunSpec is the run configuration the coordinator distributes to every
// node, and the builders that turn it into an application instance and an
// engine configuration. It is deliberately JSON ("control plane"): humans
// read and write it, it travels once per run. The data plane (wire.go) is
// binary.

import (
	"encoding/json"
	"fmt"
	"math"

	"specomp/internal/apps/heat"
	"specomp/internal/apps/jacobi"
	"specomp/internal/checkpoint"
	"specomp/internal/core"
	"specomp/internal/obs"
	"specomp/internal/partition"
	"specomp/internal/pipeline"
)

// RunSpec describes one distributed run. The coordinator normalizes it once
// and every node builds its application and engine configuration from the
// identical normalized copy, so all processors run behaviourally identical
// configs (the engine's standing requirement).
type RunSpec struct {
	// App selects the application: "heat" (2-D diffusion stencil), "jacobi"
	// (dense diagonally dominant linear system) or "pipeline" (a multi-stage
	// streaming pipeline on the engine's dependency-graph support, one stage
	// per rank).
	App string `json:"app"`
	// Procs is the number of node processes.
	Procs int `json:"procs"`
	// MaxIter bounds the iteration count.
	MaxIter int `json:"max_iter"`
	// FW and BW are the engine's forward and backward windows.
	FW int `json:"fw"`
	BW int `json:"bw,omitempty"`
	// Theta is the relative-error speculation threshold.
	Theta float64 `json:"theta"`
	// Rows, Cols size the heat grid.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// N sizes the jacobi system.
	N int `json:"n,omitempty"`
	// Width is the pipeline's per-stage row width.
	Width int `json:"width,omitempty"`
	// Placement maps pipeline stage -> rank (a permutation of 0..Procs-1);
	// empty means stage s runs on rank s. It travels in the spec so every
	// node derives the identical rank-level dependency graph.
	Placement []int `json:"placement,omitempty"`
	// Exact zeroes every pipeline stage's check tolerance, making an FW=1
	// run bit-identical to the serial reference (every broadcast is
	// validated or repaired before it is sent).
	Exact bool `json:"exact,omitempty"`
	// Tol, when positive, enables jacobi's convergence stopper.
	Tol float64 `json:"tol,omitempty"`
	// Seed seeds problem generation (jacobi) — every node must agree.
	Seed int64 `json:"seed"`
	// Deadline and MaxOverrun forward the engine's graceful-degradation
	// knobs (wall-clock seconds on this substrate).
	Deadline   float64 `json:"deadline,omitempty"`
	MaxOverrun int     `json:"max_overrun,omitempty"`
	// MaxCrashOverrun forwards the engine's crash-bridging window: extra
	// speculative iterations allowed past a peer reported down, so
	// survivors compute through a crash until the peer rejoins (0 = engine
	// default: 6 when Deadline > 0).
	MaxCrashOverrun int `json:"max_crash_overrun,omitempty"`
	// CheckpointEvery, when positive, snapshots engine state every K
	// iterations; blobs are shipped to the coordinator for custody.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// HoldSends forwards the speculative-send ablation switch.
	HoldSends bool `json:"hold_sends,omitempty"`
	// Wire tunes the data-plane framing (batching, delta coding, flush
	// policy). The zero value means defaults: batching on, delta off.
	Wire WireSpec `json:"wire,omitempty"`
	// Job names the run in aggregated fleet metrics (the job label).
	// Defaults to App.
	Job string `json:"job,omitempty"`
	// ObsPushMS is the period, in milliseconds, at which nodes push metrics
	// snapshots to the coordinator when it advertised CapObs. 0 means the
	// 500 ms default; negative disables pushing.
	ObsPushMS int `json:"obs_push_ms,omitempty"`
	// Trace enables wire-plane journal events (send/deliver stamps) and
	// ships each node's journal home in its result, so the coordinator can
	// merge a cross-process speculation trace.
	Trace bool `json:"trace,omitempty"`
}

// WireSpec tunes the distnet data plane. It travels inside the RunSpec so
// the whole mesh agrees on framing policy; per-link shape is still
// negotiated via hello capability masks, so mismatched builds degrade to
// single-message frames.
type WireSpec struct {
	// NoBatch disables multi-message frames (the per-message baseline the
	// benchmarks compare against).
	NoBatch bool `json:"no_batch,omitempty"`
	// Delta enables delta coding of consecutive same-stream vectors inside
	// batch frames (negotiated per link via CapDelta).
	Delta bool `json:"delta,omitempty"`
	// MaxBatchMsgs flushes a pending batch at this many messages.
	MaxBatchMsgs int `json:"max_batch_msgs,omitempty"`
	// MaxBatchBytes flushes a pending batch at this many payload bytes.
	MaxBatchBytes int `json:"max_batch_bytes,omitempty"`
	// LingerUS bounds how long a pending batch may wait for company, in
	// microseconds. Blocking receives flush eagerly, so linger only delays
	// messages the sender is still working past.
	LingerUS int `json:"linger_us,omitempty"`
}

// Normalize fills defaults and validates; the coordinator calls it once
// before distributing the spec.
func (s *RunSpec) Normalize() error {
	if s.App == "" {
		s.App = "heat"
	}
	if s.Procs <= 0 {
		s.Procs = 4
	}
	if s.MaxIter <= 0 {
		s.MaxIter = 200
	}
	if s.FW < 0 {
		return fmt.Errorf("distnet: negative FW")
	}
	if s.Theta <= 0 {
		s.Theta = 1e-3
	}
	if s.Wire.MaxBatchMsgs <= 0 {
		s.Wire.MaxBatchMsgs = 32
	}
	if s.Wire.MaxBatchBytes <= 0 {
		s.Wire.MaxBatchBytes = 48 << 10
	}
	if s.Wire.LingerUS <= 0 {
		s.Wire.LingerUS = 150
	}
	if s.Job == "" {
		s.Job = s.App
	}
	if s.ObsPushMS == 0 {
		s.ObsPushMS = 500
	}
	switch s.App {
	case "heat":
		if s.Rows <= 0 {
			s.Rows = 48
		}
		if s.Cols <= 0 {
			s.Cols = 32
		}
		if s.Rows < s.Procs {
			return fmt.Errorf("distnet: heat grid of %d rows cannot be split over %d processors", s.Rows, s.Procs)
		}
	case "jacobi":
		if s.N <= 0 {
			s.N = 64
		}
		if s.N < s.Procs {
			return fmt.Errorf("distnet: jacobi system of %d variables cannot be split over %d processors", s.N, s.Procs)
		}
	case "pipeline":
		if s.Procs < 2 {
			return fmt.Errorf("distnet: a pipeline needs at least 2 stages, got %d processors", s.Procs)
		}
		if s.Width <= 0 {
			s.Width = 16
		}
		// Building the placed DepGraph validates Placement (length,
		// permutation, range) once, centrally, before the spec ships.
		if _, err := s.pipelineGraph().DepGraph(s.Placement); err != nil {
			return fmt.Errorf("distnet: %w", err)
		}
	default:
		return fmt.Errorf("distnet: unknown app %q (want heat, jacobi or pipeline)", s.App)
	}
	return nil
}

// pipelineGraph builds the spec's stage graph. Construction is deterministic
// in (Procs, Width, Seed), so every node process derives the identical
// pipeline from the coordinator's normalized spec.
func (s RunSpec) pipelineGraph() *pipeline.Graph {
	g := pipeline.Chain(s.Procs, s.Width, s.Seed)
	if s.Exact {
		g.SetUniformTol(0)
	}
	return g
}

// Blocks returns the per-processor variable ranges of the spec's uniform
// decomposition (processes are assumed homogeneous; capacity-weighted
// partitioning stays a simulator concern).
func (s RunSpec) Blocks() [][2]int {
	n := s.Rows
	if s.App == "jacobi" {
		n = s.N
	}
	caps := make([]float64, s.Procs)
	for i := range caps {
		caps[i] = 1
	}
	counts := partition.Proportional(n, caps)
	blocks := make([][2]int, s.Procs)
	lo := 0
	for i, c := range counts {
		blocks[i] = [2]int{lo, lo + c}
		lo += c
	}
	return blocks
}

// BuildApp constructs rank's application instance. Problem generation is
// seeded from the spec, so every node derives the identical global problem.
func BuildApp(s RunSpec, rank int) (core.App, error) {
	if rank < 0 || rank >= s.Procs {
		return nil, fmt.Errorf("distnet: rank %d outside [0, %d)", rank, s.Procs)
	}
	switch s.App {
	case "heat":
		return heat.NewApp(heat.DefaultGrid(s.Rows, s.Cols), s.Blocks(), rank, s.Theta), nil
	case "jacobi":
		prob := jacobi.NewDiagonallyDominant(s.N, s.Seed)
		app := jacobi.NewApp(prob, s.Blocks(), rank, s.Theta)
		app.Tol = s.Tol
		return app, nil
	case "pipeline":
		// The stage adapter implements core.Grapher, so the engine picks up
		// the placed chain DepGraph without any transport involvement.
		return s.pipelineGraph().AppAt(s.Placement, rank)
	}
	return nil, fmt.Errorf("distnet: unknown app %q", s.App)
}

// SerialPipeline evaluates the spec's pipeline on the lockstep serial
// reference and returns each stage's final row, stage-indexed.
func (s RunSpec) SerialPipeline() ([][]float64, error) {
	if s.App != "pipeline" {
		return nil, fmt.Errorf("distnet: SerialPipeline on app %q", s.App)
	}
	return s.pipelineGraph().Serial(s.MaxIter), nil
}

// VerifyPipeline compares every rank's reported final row against the serial
// reference, honouring the spec's stage placement, and fails if any element
// deviates by more than envelope. An Exact FW<=1 run must pass with an
// envelope of 0; tolerance-mode runs pass within their contraction envelope.
func VerifyPipeline(s RunSpec, reports []NodeReport, envelope float64) error {
	want, err := s.SerialPipeline()
	if err != nil {
		return err
	}
	byRank := make(map[int][]float64, len(reports))
	for _, rep := range reports {
		byRank[rep.Rank] = rep.Final
	}
	for stage := range want {
		rank := stage
		if s.Placement != nil {
			rank = s.Placement[stage]
		}
		final, ok := byRank[rank]
		if !ok {
			return fmt.Errorf("distnet: no report from rank %d (stage %d)", rank, stage)
		}
		if len(final) != len(want[stage]) {
			return fmt.Errorf("distnet: stage %d final has %d values, want %d", stage, len(final), len(want[stage]))
		}
		for i, v := range final {
			if d := math.Abs(v - want[stage][i]); d > envelope {
				return fmt.Errorf("distnet: stage %d (rank %d) element %d deviates %g from serial (envelope %g)",
					stage, rank, i, d, envelope)
			}
		}
	}
	return nil
}

// AssembleHeat stitches the per-rank final strips of a heat run back into
// the global field — the shape serial references compare against. It
// validates every strip's size so a half-reported run fails loudly.
func AssembleHeat(s RunSpec, reports []NodeReport) ([][]float64, error) {
	if s.App != "heat" {
		return nil, fmt.Errorf("distnet: AssembleHeat on app %q", s.App)
	}
	field := make([][]float64, s.Rows)
	blocks := s.Blocks()
	for _, rep := range reports {
		if rep.Rank < 0 || rep.Rank >= len(blocks) {
			return nil, fmt.Errorf("distnet: report for out-of-range rank %d", rep.Rank)
		}
		lo, hi := blocks[rep.Rank][0], blocks[rep.Rank][1]
		if want := (hi - lo) * s.Cols; len(rep.Final) != want {
			return nil, fmt.Errorf("distnet: rank %d final has %d values, want %d", rep.Rank, len(rep.Final), want)
		}
		for r := lo; r < hi; r++ {
			field[r] = rep.Final[(r-lo)*s.Cols : (r-lo+1)*s.Cols]
		}
	}
	return field, nil
}

// CoreConfig derives the engine configuration every node runs with.
func (s RunSpec) CoreConfig(metrics *obs.Registry, journal *obs.Journal, store checkpoint.Store) core.Config {
	cfg := core.Config{
		FW: s.FW, BW: s.BW, MaxIter: s.MaxIter,
		HoldSends: s.HoldSends,
		Deadline:  s.Deadline, MaxOverrun: s.MaxOverrun,
		MaxCrashOverrun: s.MaxCrashOverrun,
		Metrics:         metrics, Journal: journal,
	}
	if s.CheckpointEvery > 0 && store != nil {
		cfg.CheckpointEvery = s.CheckpointEvery
		cfg.CheckpointStore = store
	}
	return cfg
}

// wireConfig is the body of a FrameConfig: everything one node needs to
// join the mesh and run.
type wireConfig struct {
	Rank  int      `json:"rank"`
	Peers []string `json:"peers"` // listen address of every rank, index-aligned
	Spec  RunSpec  `json:"spec"`
	// Checkpoint is the node's latest snapshot in coordinator custody (nil
	// on a fresh run); a relaunched node restores and rejoins from it.
	Checkpoint []byte `json:"checkpoint,omitempty"`
	// CoordCaps advertises the coordinator's capabilities (the coordinator
	// sends no hello, so its caps word travels here). CapObs invites
	// periodic metrics-snapshot pushes.
	CoordCaps uint32 `json:"coord_caps,omitempty"`
	// Rejoin marks a config answering a rejoin hello: the run is already in
	// flight, the node's rank was vacated by its previous incarnation, and
	// the mesh must be rebuilt by dialing every peer (their accept loops
	// replace the stale links).
	Rejoin bool `json:"rejoin,omitempty"`
}

// resultMsg is the body of a FrameResult.
type resultMsg struct {
	Rank      int     `json:"rank"`
	HTTP      string  `json:"http,omitempty"` // node's live obs endpoint, if served
	Converged bool    `json:"converged"`
	Iters     int     `json:"iters"`
	Epoch     int     `json:"epoch,omitempty"`    // incarnation that produced this result
	Restores  int     `json:"restores,omitempty"` // checkpoint restores the engine performed
	SpecsMade int     `json:"specs_made"`
	SpecsBad  int     `json:"specs_bad"`
	Repairs   int     `json:"repairs"`
	Overruns  int     `json:"overruns"`
	WallSec   float64 `json:"wall_sec"`
	CommSec   float64 `json:"comm_sec"`
	MsgsSent  int     `json:"msgs_sent"`
	BytesSent int     `json:"bytes_sent"`
	// Wire-plane throughput measures (the soak harness aggregates these).
	MsgsRecvd    int     `json:"msgs_recvd,omitempty"`
	FramesSent   int     `json:"frames_sent,omitempty"`
	LatP50Sec    float64 `json:"lat_p50_sec,omitempty"`
	LatP99Sec    float64 `json:"lat_p99_sec,omitempty"`
	AllocsPerMsg float64 `json:"allocs_per_msg,omitempty"`
	// Trace-merge support: the wall-clock instant of the node's journal t=0,
	// its estimated clock offset/RTT to every peer (index-aligned by rank;
	// 0 at its own rank and where no estimate exists), and — when the spec
	// set Trace — the node's journal itself.
	StartUnix float64     `json:"start_unix,omitempty"`
	ClockOff  []float64   `json:"clock_off,omitempty"`
	ClockRTT  []float64   `json:"clock_rtt,omitempty"`
	Journal   []obs.Event `json:"journal,omitempty"`
	Final     []float64   `json:"final"`
}

func encodeJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// All wire structs are plain data; a marshal failure is a bug.
		panic(fmt.Sprintf("distnet: encoding %T: %v", v, err))
	}
	return b
}
