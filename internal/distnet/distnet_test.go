package distnet

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"specomp/internal/apps/heat"
	"specomp/internal/core"
	"specomp/internal/faults"
	"specomp/internal/netmodel"
	"specomp/internal/realtime"
)

// launchNodes runs p nodes in-process (goroutines, but real TCP sockets and
// the real wire protocol) against a coordinator at coordAddr.
func launchNodes(t *testing.T, p int, mk func(rank int) NodeConfig) []*NodeResult {
	t.Helper()
	results := make([]*NodeResult, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = RunNode(mk(i))
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	return results
}

// assembleHeat stitches per-rank strips back into the global field.
func assembleHeat(t *testing.T, spec RunSpec, reports []NodeReport) [][]float64 {
	t.Helper()
	field := make([][]float64, spec.Rows)
	blocks := spec.Blocks()
	for _, rep := range reports {
		lo, hi := blocks[rep.Rank][0], blocks[rep.Rank][1]
		if want := (hi - lo) * spec.Cols; len(rep.Final) != want {
			t.Fatalf("rank %d final has %d values, want %d", rep.Rank, len(rep.Final), want)
		}
		for r := lo; r < hi; r++ {
			field[r] = rep.Final[(r-lo)*spec.Cols : (r-lo+1)*spec.Cols]
		}
	}
	return field
}

func TestFourNodeHeatMatchesSerialAndRealtime(t *testing.T) {
	spec := RunSpec{App: "heat", Procs: 4, MaxIter: 60, FW: 2, Theta: 1e-3, Rows: 24, Cols: 16}
	coord, err := NewCoordinator(CoordConfig{Spec: spec, Timeout: time.Minute, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	spec = coord.Spec()

	nodeResults := launchNodes(t, spec.Procs, func(rank int) NodeConfig {
		return NodeConfig{Coord: coord.Addr(), HTTPAddr: "127.0.0.1:0"}
	})
	reports, err := coord.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != spec.Procs {
		t.Fatalf("got %d reports, want %d", len(reports), spec.Procs)
	}

	// The distributed field must match the serial reference within the
	// speculation tolerance (theta bounds each accepted prediction error).
	grid := heat.DefaultGrid(spec.Rows, spec.Cols)
	serial := grid.SerialRun(spec.MaxIter)
	field := assembleHeat(t, spec, reports)
	if d := heat.MaxDiff(field, serial); d > 0.5 {
		t.Errorf("distributed field deviates %g from serial reference", d)
	}

	// And match an equivalent in-process realtime run within the same
	// tolerance (both substrates speculate, so they agree only statistically).
	rt, err := realtime.Run(realtime.Config{Procs: spec.Procs, MaxIter: spec.MaxIter, FW: spec.FW},
		func(pid, procs int) core.App {
			return heat.NewApp(grid, spec.Blocks(), pid, spec.Theta)
		})
	if err != nil {
		t.Fatal(err)
	}
	rtField := make([][]float64, spec.Rows)
	blocks := spec.Blocks()
	for _, r := range rt {
		lo, hi := blocks[r.Proc][0], blocks[r.Proc][1]
		for row := lo; row < hi; row++ {
			rtField[row] = r.Final[(row-lo)*spec.Cols : (row-lo+1)*spec.Cols]
		}
	}
	if d := heat.MaxDiff(field, rtField); d > 0.5 {
		t.Errorf("distributed field deviates %g from realtime run", d)
	}

	// Per-node lifecycle invariants.
	specs := 0
	for i, rep := range reports {
		if rep.Rank != i {
			t.Errorf("report %d has rank %d", i, rep.Rank)
		}
		if rep.Iters != spec.MaxIter {
			t.Errorf("rank %d ran %d iters, want %d", i, rep.Iters, spec.MaxIter)
		}
		if rep.MsgsSent == 0 || rep.BytesSent == 0 {
			t.Errorf("rank %d reported no traffic (%d msgs, %d bytes)", i, rep.MsgsSent, rep.BytesSent)
		}
		specs += rep.SpecsMade
	}
	if specs == 0 {
		t.Error("no speculation happened across the whole run")
	}

	// Every node served live observability during the run; RunNode keeps the
	// endpoint up until the coordinator-confirmed shutdown, so the report's
	// HTTP field must have been a real address.
	for _, res := range nodeResults {
		if res.HTTPAddr == "" {
			t.Errorf("rank %d served no obs endpoint", res.Rank)
		}
	}
	for _, rep := range reports {
		if rep.HTTP == "" {
			t.Errorf("rank %d reported no obs endpoint", rep.Rank)
		}
	}
}

// TestObsEndpointLive hits a node's /metrics and /journal while the run is
// in flight (the endpoint closes when RunNode returns, so the probe races
// the run; a generous MaxIter keeps the window open).
func TestObsEndpointLive(t *testing.T) {
	spec := RunSpec{App: "jacobi", Procs: 2, MaxIter: 3000, FW: 1, Theta: 1e-3, N: 32}
	coord, err := NewCoordinator(CoordConfig{Spec: spec, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	addrCh := make(chan string, spec.Procs)
	var wg sync.WaitGroup
	for i := 0; i < spec.Procs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := RunNode(NodeConfig{
				Coord:    coord.Addr(),
				HTTPAddr: "127.0.0.1:0",
				Logf: func(format string, args ...any) {
					if strings.Contains(format, "serving") {
						addrCh <- fmt.Sprintf(format, args...)
					}
				},
			})
			if err != nil {
				t.Errorf("node: %v", err)
				return
			}
			_ = res
		}()
	}

	// Scrape the first node that announces its endpoint.
	select {
	case line := <-addrCh:
		addr := line[strings.LastIndex(line, "http://"):]
		for _, path := range []string{"/metrics", "/journal"} {
			resp, err := http.Get(addr + path)
			if err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("GET %s: status %d", path, resp.StatusCode)
			}
			if path == "/metrics" && !strings.Contains(string(body), "specomp_") {
				t.Errorf("/metrics has no specomp_ series:\n%.400s", body)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("no node announced an obs endpoint")
	}
	if _, err := coord.Wait(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestNodesBeforeCoordinator exercises dial retry with backoff: all nodes
// launch first and must keep retrying until the coordinator appears.
func TestNodesBeforeCoordinator(t *testing.T) {
	spec := RunSpec{App: "heat", Procs: 3, MaxIter: 20, FW: 1, Theta: 1e-3, Rows: 12, Cols: 8}
	// Reserve an address, release it, and start the coordinator there later.
	c0, err := NewCoordinator(CoordConfig{Spec: spec, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	addr := c0.Addr()
	c0.Close()

	done := make(chan []*NodeResult, 1)
	go func() {
		done <- launchNodes(t, spec.Procs, func(rank int) NodeConfig {
			return NodeConfig{Coord: addr, DialTimeout: 20 * time.Second}
		})
	}()

	time.Sleep(300 * time.Millisecond) // nodes are now dialing a closed port
	coord, err := NewCoordinator(CoordConfig{Addr: addr, Spec: spec, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	reports, err := coord.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != spec.Procs {
		t.Fatalf("got %d reports", len(reports))
	}
	<-done
}

// TestCheckpointCustody runs with periodic checkpointing and asserts the
// coordinator ends the run holding a snapshot from every rank.
func TestCheckpointCustody(t *testing.T) {
	spec := RunSpec{App: "heat", Procs: 2, MaxIter: 40, FW: 1, Theta: 1e-3,
		Rows: 12, Cols: 8, CheckpointEvery: 10}
	coord, err := NewCoordinator(CoordConfig{Spec: spec, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	launchNodes(t, spec.Procs, func(rank int) NodeConfig {
		return NodeConfig{Coord: coord.Addr()}
	})
	if _, err := coord.Wait(); err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < spec.Procs; rank++ {
		blob, ok := coord.Checkpoint(rank)
		if !ok || len(blob) == 0 {
			t.Errorf("coordinator holds no checkpoint for rank %d", rank)
		}
	}
}

// TestFaultySendPath runs the distributed engine under the simulator's
// fault semantics on the socket send path — delay spikes and duplicates
// (loss-free, so no iteration can starve) — and asserts the run still
// converges on the serial answer.
func TestFaultySendPath(t *testing.T) {
	spec := RunSpec{App: "heat", Procs: 3, MaxIter: 40, FW: 2, Theta: 1e-3, Rows: 12, Cols: 8}
	coord, err := NewCoordinator(CoordConfig{Spec: spec, Timeout: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	spec = coord.Spec()

	model := faults.Duplicate{
		Prob: 0.2,
		Inner: faults.DelaySpikes{
			Prob: 0.3, ExtraMin: 0.001, ExtraMax: 0.003, // ms-scale spikes: real on the wire, harmless overall
			Inner: netmodel.Fixed{D: 0.0002},
		},
	}
	launchNodes(t, spec.Procs, func(rank int) NodeConfig {
		return NodeConfig{Coord: coord.Addr(), Faults: model, FaultSeed: int64(100 + rank)}
	})
	reports, err := coord.Wait()
	if err != nil {
		t.Fatal(err)
	}
	serial := heat.DefaultGrid(spec.Rows, spec.Cols).SerialRun(spec.MaxIter)
	field := assembleHeat(t, spec, reports)
	if d := heat.MaxDiff(field, serial); d > 0.5 {
		t.Errorf("faulty-path field deviates %g from serial reference", d)
	}
}

// TestJacobiConvergesDistributed checks the convergence-stopper path end to
// end: all nodes must agree the system converged and on the solution.
func TestJacobiConvergesDistributed(t *testing.T) {
	spec := RunSpec{App: "jacobi", Procs: 2, MaxIter: 400, FW: 1, Theta: 1e-4,
		N: 32, Tol: 1e-9, Seed: 42}
	coord, err := NewCoordinator(CoordConfig{Spec: spec, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	launchNodes(t, spec.Procs, func(rank int) NodeConfig {
		return NodeConfig{Coord: coord.Addr()}
	})
	reports, err := coord.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if !rep.Converged {
			t.Errorf("rank %d did not converge in %d iters", rep.Rank, rep.Iters)
		}
		for _, v := range rep.Final {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("rank %d solution contains %v", rep.Rank, v)
			}
		}
	}
}

// TestWireModesConverge runs the same heat problem under each wire-plane
// shape — batched (default), batched+delta, and per-message frames — and
// asserts all three converge on the serial reference. For the batched modes
// it also checks the throughput accounting: frames actually coalesced
// (FramesSent < MsgsSent) and delivery-latency percentiles are sane.
func TestWireModesConverge(t *testing.T) {
	modes := map[string]WireSpec{
		"batched": {},
		"delta":   {Delta: true},
		"nobatch": {NoBatch: true},
	}
	for name, wire := range modes {
		t.Run(name, func(t *testing.T) {
			spec := RunSpec{App: "heat", Procs: 4, MaxIter: 60, FW: 2, Theta: 1e-3,
				Rows: 24, Cols: 16, Wire: wire}
			coord, err := NewCoordinator(CoordConfig{Spec: spec, Timeout: time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			defer coord.Close()
			spec = coord.Spec()
			launchNodes(t, spec.Procs, func(rank int) NodeConfig {
				return NodeConfig{Coord: coord.Addr()}
			})
			reports, err := coord.Wait()
			if err != nil {
				t.Fatal(err)
			}
			serial := heat.DefaultGrid(spec.Rows, spec.Cols).SerialRun(spec.MaxIter)
			field := assembleHeat(t, spec, reports)
			if d := heat.MaxDiff(field, serial); d > 0.5 {
				t.Errorf("field deviates %g from serial reference", d)
			}
			for _, rep := range reports {
				if rep.MsgsRecvd == 0 {
					t.Errorf("rank %d delivered no messages", rep.Rank)
				}
				if rep.FramesSent == 0 {
					t.Errorf("rank %d reported no frames", rep.Rank)
				}
				if !wire.NoBatch && rep.FramesSent >= rep.MsgsSent {
					t.Errorf("rank %d sent %d frames for %d messages: nothing coalesced",
						rep.Rank, rep.FramesSent, rep.MsgsSent)
				}
				// Loopback deliveries can be faster than the send-timestamp
				// clock resolution, so p50 may legitimately clamp to zero;
				// ordering and non-negativity must still hold.
				if rep.LatP50Sec < 0 || rep.LatP99Sec < rep.LatP50Sec {
					t.Errorf("rank %d latency percentiles implausible: p50=%g p99=%g",
						rep.Rank, rep.LatP50Sec, rep.LatP99Sec)
				}
			}
		})
	}
}

// TestRunSpecValidation covers Normalize's rejection paths.
func TestRunSpecValidation(t *testing.T) {
	bad := []RunSpec{
		{App: "nosuch"},
		{App: "heat", Procs: 8, Rows: 4},
		{App: "jacobi", Procs: 80, N: 40},
		{FW: -1},
	}
	for i, s := range bad {
		if err := s.Normalize(); err == nil {
			t.Errorf("spec %d normalized without error: %+v", i, s)
		}
	}
	var def RunSpec
	if err := def.Normalize(); err != nil {
		t.Fatalf("zero spec: %v", err)
	}
	if def.App != "heat" || def.Procs != 4 || def.MaxIter != 200 {
		t.Errorf("unexpected defaults: %+v", def)
	}
}
