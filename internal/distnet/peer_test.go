package distnet

import (
	"bufio"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"specomp/internal/cluster"
	"specomp/internal/faults"
	"specomp/internal/netmodel"
)

// tcpPair returns a connected loopback TCP pair (a dialed, b accepted).
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	a, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	b := <-accepted
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// TestPeerConnCloseRace cycles connect/teardown with concurrent senders and
// concurrent closers — the coordinator's shutdown broadcast racing a node's
// own teardown. Run under -race; the old select-then-close(stop) pattern
// double-closed the channel and panicked.
func TestPeerConnCloseRace(t *testing.T) {
	for cycle := 0; cycle < 100; cycle++ {
		a, b := net.Pipe()
		pc := newPeerConn(0, a, 8, wireOpts{})
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			br := bufio.NewReader(b)
			for {
				if _, err := readFrame(br); err != nil {
					return
				}
			}
		}()
		var wg sync.WaitGroup
		for s := 0; s < 3; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < 20; k++ {
					pc.send(Frame{Type: FrameData, Msg: cluster.Message{
						Src: 0, Dst: 1, Tag: 1, Iter: k, Data: []float64{1, 2},
					}})
				}
			}()
		}
		for c := 0; c < 3; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				pc.close()
			}()
		}
		wg.Wait()
		pc.close() // still idempotent after everyone else
		if !pc.down.Load() {
			// down need not be set by close itself — but a send after close
			// must be a silent no-op, never a panic or a hang.
			pc.send(Frame{Type: FrameHeartbeat})
		}
		b.Close()
		<-drained
	}
}

// TestHeartbeatSurvivesBackpressure is the liveness-starvation regression:
// a writer stalled against a full TCP window (healthy peer, slow reader)
// must still get its due liveness beacon onto the wire as soon as the link
// drains. The old drop-on-congestion beacons died at every full-queue tick,
// so a backpressured link went silent and was falsely suspected dead.
func TestHeartbeatSurvivesBackpressure(t *testing.T) {
	a, b := tcpPair(t)
	const outCap = 4
	pc := newPeerConn(1, a, outCap, wireOpts{})
	defer pc.close()

	// 1 MiB frames overwhelm the socket buffering well before the queue
	// does: the writer ends up blocked mid-Write against a full TCP window.
	big := make([]float64, 128<<10)
	const dataFrames = 24
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		for i := 0; i < dataFrames; i++ {
			pc.send(Frame{Type: FrameData, Msg: cluster.Message{Src: 1, Iter: i, Data: big}})
		}
	}()

	// Wait for saturation: queue full, writer stuck in the TCP window.
	deadline := time.Now().Add(5 * time.Second)
	for len(pc.out) < outCap && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(pc.out) < outCap {
		t.Fatal("could not saturate the link")
	}

	const interval = 100 * time.Millisecond
	go pc.heartbeater(interval)
	time.Sleep(3 * interval) // beacons come due while the link is stalled

	// Drain. The due beacon was enqueued (blocking) during the stall, so it
	// arrives interleaved with the backlog — not an interval later.
	br := bufio.NewReader(b)
	data, beats := 0, 0
	for data < dataFrames {
		f, err := readFrame(br)
		if err != nil {
			t.Fatalf("after %d data frames: %v", data, err)
		}
		switch f.Type {
		case FrameData:
			data++
		case FrameHeartbeat:
			beats++
		}
	}
	if beats == 0 {
		// Allow the queued beacon to trail the final data frame — but it
		// must land well before the next tick would fire.
		_ = b.SetReadDeadline(time.Now().Add(interval / 2))
		if f, err := readFrame(br); err == nil && f.Type == FrameHeartbeat {
			beats++
		}
	}
	if beats == 0 {
		t.Fatal("backpressured link starved its liveness beacons")
	}
	<-senderDone
	if pc.down.Load() {
		t.Fatal("healthy link latched down during backpressure")
	}
}

// TestHeartbeatPiggybacksOnTraffic asserts the other half of the policy: a
// link already carrying data emits no explicit beacons at all — outbound
// frames are the heartbeat.
func TestHeartbeatPiggybacksOnTraffic(t *testing.T) {
	a, b := tcpPair(t)
	pc := newPeerConn(1, a, 64, wireOpts{})
	defer pc.close()

	const interval = 40 * time.Millisecond
	go pc.heartbeater(interval)

	stop := make(chan struct{})
	go func() { // steady data traffic, well under the beacon interval
		tick := time.NewTicker(interval / 8)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-tick.C:
				pc.send(Frame{Type: FrameData, Msg: cluster.Message{Src: 1, Iter: i, Data: []float64{1}}})
			case <-stop:
				return
			}
		}
	}()

	br := bufio.NewReader(b)
	beats := 0
	readUntil := time.Now().Add(5 * interval)
	for time.Now().Before(readUntil) {
		_ = b.SetReadDeadline(readUntil)
		f, err := readFrame(br)
		if err != nil {
			break
		}
		if f.Type == FrameHeartbeat {
			beats++
		}
	}
	close(stop)
	if beats != 0 {
		t.Errorf("busy link emitted %d explicit beacons, want 0 (piggybacked)", beats)
	}
}

// linkedTransports builds two manual transports over one real TCP link —
// rank 0 (optionally fault-injected) talking to rank 1 — with readers
// running, mirroring what RunNode assembles around connectMesh.
func linkedTransports(t *testing.T, wire WireSpec, model netmodel.Model, seed int64) (*transport, *transport) {
	t.Helper()
	norm := RunSpec{Wire: wire} // Normalize fills the batch caps and linger default
	if err := norm.Normalize(); err != nil {
		t.Fatal(err)
	}
	wire = norm.Wire

	a, b := tcpPair(t)
	mk := func(rank int, conn net.Conn, peer int, inj *faults.Injector) *transport {
		tr := &transport{
			rank: rank, p: 2, procs: 2,
			peers: make([]atomic.Pointer[peerConn], 2),
			inbox: make(chan cluster.Message, 4096),
			inj:   inj,
			wire:  wire,
			start: time.Now(),
		}
		if !wire.NoBatch {
			tr.pend = make([][]cluster.Message, 2)
			for i := range tr.pend {
				tr.pend[i] = getBatch()
			}
			tr.pendBytes = make([]int, 2)
			tr.pendSince = make([]time.Time, 2)
			tr.lingerStop = make(chan struct{})
		}
		pc := newPeerConn(peer, conn, 4096, linkOpts(wire, localCaps(wire)))
		tr.peers[peer].Store(pc)
		go tr.reader(pc)
		return tr
	}
	tr0 := mk(0, a, 1, faults.NewInjector(model, seed))
	tr1 := mk(1, b, 0, nil)
	t.Cleanup(func() { tr0.close(); tr1.close() })
	return tr0, tr1
}

// TestBatchFaultParity proves injection is per message inside a batch: the
// multiset of deliveries under drop+duplicate faults on the batched path
// must match, message for message, what netmodel.DeliveriesOf plans for the
// same (model, seed, send sequence) — the simulator's semantics, with
// batching invisible to them. It also asserts coalescing actually happened.
func TestBatchFaultParity(t *testing.T) {
	model := func() netmodel.Model {
		return faults.Drop{
			Prob: 0.3,
			Inner: faults.Duplicate{
				Prob:  0.3,
				Inner: netmodel.Fixed{D: 0}, // zero delay: every copy goes out in the iteration's batch
			},
		}
	}
	const seed = 909
	const iters, tags = 50, 4
	payload := func(iter, tag int) []float64 {
		return []float64{float64(iter), float64(tag), float64(iter * tag)}
	}

	tr0, tr1 := linkedTransports(t, WireSpec{Delta: true}, model(), seed)

	// Sender: a deterministic message sequence, flushed once per iteration
	// (the blocking-receive boundary RunNode's engine hits).
	for iter := 0; iter < iters; iter++ {
		for tag := 0; tag < tags; tag++ {
			tr0.SendShared(1, tag, iter, payload(iter, tag))
		}
		tr0.flushAll(flushRecv)
	}

	// Replay the identical plan sequence offline.
	rng := rand.New(rand.NewSource(seed))
	replay := model()
	netmodel.ResetModel(replay)
	type key struct{ tag, iter int }
	want := make(map[key]int)
	wantTotal := 0
	for iter := 0; iter < iters; iter++ {
		for tag := 0; tag < tags; tag++ {
			bytes := 8*len(payload(iter, tag)) + 64
			plan := netmodel.DeliveriesOf(replay, netmodel.Msg{
				Src: 0, Dst: 1, Bytes: bytes, Procs: 2, Now: 0,
			}, rng)
			want[key{tag, iter}] += len(plan)
			wantTotal += len(plan)
		}
	}
	if wantTotal == 0 || wantTotal == iters*tags {
		t.Fatalf("degenerate replay plan (%d deliveries of %d sends) — bad seed for the test", wantTotal, iters*tags)
	}

	// Receiver: drain everything the wire delivers.
	got := make(map[key]int)
	gotTotal := 0
	for {
		m, ok := tr1.RecvDeadline(cluster.Any, cluster.Any, 0.5)
		if !ok {
			break
		}
		k := key{m.Tag, m.Iter}
		got[k]++
		gotTotal++
		if wantData := payload(m.Iter, m.Tag); len(m.Data) != len(wantData) {
			t.Fatalf("msg %v: %d data elements, want %d", k, len(m.Data), len(wantData))
		} else {
			for i := range wantData {
				if m.Data[i] != wantData[i] {
					t.Fatalf("msg %v: data[%d] = %v, want %v (payload corrupted in batch)", k, i, m.Data[i], wantData[i])
				}
			}
		}
	}
	if gotTotal != wantTotal {
		t.Fatalf("delivered %d messages, replay plans %d", gotTotal, wantTotal)
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("message (tag %d, iter %d): delivered %d copies, replay plans %d", k.tag, k.iter, got[k], n)
		}
	}

	// Wire parity replays delivery counts; throughput needs the coalescing:
	// far fewer physical frames than messages.
	frames := tr0.framesSentTotal()
	if frames >= gotTotal {
		t.Errorf("no coalescing: %d frames for %d delivered messages", frames, gotTotal)
	}
	if tr0.drops == 0 {
		t.Error("injector dropped nothing at Prob 0.3 — injection not on the send path?")
	}
}

// TestDialPeerRetriesTruncatedHello drives the taxonomy into the mesh dial
// path: a hello reply cut off mid-frame (stream death — retryable) must be
// retried on a fresh connection, while a corrupt reply must fail fast.
func TestDialPeerRetriesTruncatedHello(t *testing.T) {
	newListener := func(handle func(attempt int, conn net.Conn) bool) (string, chan int) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		counted := make(chan int, 16)
		go func() {
			for attempt := 0; ; attempt++ {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				counted <- attempt + 1
				if done := handle(attempt, conn); done {
					return
				}
			}
		}()
		return ln.Addr().String(), counted
	}

	goodHello := func(conn net.Conn) {
		f := Frame{Type: FrameHello, Rank: 0, Epoch: 0, Addr: "x", Caps: CapBatch}
		_, _ = writeFrame(conn, nil, &f)
	}

	t.Run("truncated reply retried", func(t *testing.T) {
		addr, counted := newListener(func(attempt int, conn net.Conn) bool {
			if _, err := readHello(conn, time.Second); err != nil {
				t.Errorf("attempt %d: %v", attempt, err)
			}
			if attempt == 0 {
				// Send half a hello, then die: io.ErrUnexpectedEOF downstream.
				enc := encodeFrame(t, Frame{Type: FrameHello, Rank: 0, Addr: "x"})
				_, _ = conn.Write(enc[:len(enc)/2])
				conn.Close()
				return false
			}
			goodHello(conn)
			return true
		})
		tr := &transport{rank: 1, p: 2, wire: WireSpec{}}
		myHello := Frame{Type: FrameHello, Rank: 1, Addr: "y", Caps: CapBatch}
		conn, reply, err := tr.dialPeer(addr, 0, myHello, NodeConfig{DialTimeout: 10 * time.Second})
		if err != nil {
			t.Fatalf("dialPeer did not survive a truncated hello: %v", err)
		}
		conn.Close()
		if reply.Caps&CapBatch == 0 {
			t.Error("negotiated caps lost across the retry")
		}
		if attempts := len(counted); attempts < 2 {
			t.Errorf("server saw %d connections, want ≥ 2 (a retry)", attempts)
		}
	})

	t.Run("corrupt reply fatal", func(t *testing.T) {
		addr, counted := newListener(func(attempt int, conn net.Conn) bool {
			if _, err := readHello(conn, time.Second); err != nil {
				t.Errorf("attempt %d: %v", attempt, err)
			}
			// A complete, CRC-valid frame of garbage type: ErrCorrupt.
			_, _ = conn.Write(frameFor([]byte{0xee}))
			_ = conn.(*net.TCPConn).CloseWrite()
			io.Copy(io.Discard, conn) // hold the conn open so the close isn't the error
			return true
		})
		tr := &transport{rank: 1, p: 2, wire: WireSpec{}}
		myHello := Frame{Type: FrameHello, Rank: 1, Addr: "y", Caps: CapBatch}
		_, _, err := tr.dialPeer(addr, 0, myHello, NodeConfig{DialTimeout: 3 * time.Second})
		if err == nil {
			t.Fatal("corrupt hello accepted")
		}
		assertCorrupt(t, err)
		if attempts := len(counted); attempts != 1 {
			t.Errorf("server saw %d connections, want exactly 1 (no retry on corruption)", attempts)
		}
	})
}
