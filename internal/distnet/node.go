package distnet

// The node runtime: one OS process per processor, driving the unchanged
// internal/core engine through the cluster.Transport contract over real TCP
// links. RunNode is the whole lifecycle — join the coordinator, build the
// peer mesh, pass the start barrier, run the engine, report the result,
// tear down on the coordinator's shutdown.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"specomp/internal/checkpoint"
	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/faults"
	"specomp/internal/netmodel"
	"specomp/internal/obs"
	"specomp/internal/realtime"
)

// NodeConfig parameterizes one node process.
type NodeConfig struct {
	// Coord is the coordinator's address. Required.
	Coord string
	// Listen is the peer listen address (default "127.0.0.1:0"); the bound
	// address is reported to the coordinator for mesh assembly.
	Listen string
	// HTTPAddr, when non-empty, serves live introspection for the run:
	// /metrics (Prometheus), /journal (JSONL), expvar and pprof — the same
	// endpoint realtime runs get. Use "127.0.0.1:0" for an ephemeral port.
	HTTPAddr string
	// Faults, when non-nil, applies the simulator's fault semantics to this
	// node's send path: every outgoing data message is planned through the
	// model (drop / duplicate / extra sender-side delay) before it touches
	// the socket. See faults.Injector.
	Faults netmodel.Model
	// FaultSeed seeds the injector's RNG.
	FaultSeed int64
	// Epoch is this process's incarnation epoch — 0 on first launch, higher
	// when a supervisor relaunched a crashed node.
	Epoch int
	// DialTimeout bounds each connection establishment, retried with
	// exponential backoff inside it (default 10s).
	DialTimeout time.Duration
	// HeartbeatEvery is the liveness beacon interval (default 250ms);
	// HeartbeatTimeout is the staleness threshold after which a silent peer
	// is reported down to the engine's failure detector (default 2s).
	HeartbeatEvery   time.Duration
	HeartbeatTimeout time.Duration
	// JournalDir, when non-empty, streams the node's run journal to
	// <JournalDir>/node-<rank>.jsonl through a buffered, size-capped writer
	// (see obs.JournalWriter) — the durable journal long soaks keep.
	JournalDir string
	// JournalMaxBytes caps the journal file before rotation (<= 0: no cap).
	JournalMaxBytes int64
	// Logf, when non-nil, receives progress lines (addresses, mesh events).
	Logf func(format string, args ...any)
}

func (cfg *NodeConfig) normalize() error {
	if cfg.Coord == "" {
		return fmt.Errorf("distnet: NodeConfig.Coord is required")
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 250 * time.Millisecond
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 2 * time.Second
	}
	return nil
}

func (cfg *NodeConfig) logf(format string, args ...any) {
	if cfg.Logf != nil {
		cfg.Logf(format, args...)
	}
}

// NodeResult is one node process's outcome.
type NodeResult struct {
	Rank int
	// HTTPAddr is the bound introspection address ("" when not served).
	HTTPAddr string
	// Result is the engine's outcome, exactly as on the other substrates.
	Result core.Result
	// Wall is the run duration from start barrier to engine completion.
	Wall time.Duration
}

// transport drives cluster.Transport over the peer mesh. The engine calls
// it from a single goroutine; per-peer reader and writer goroutines feed
// and drain the sockets.
type transport struct {
	rank, p int
	epoch   int
	start   time.Time
	// peers holds one live link per rank (nil at own index). Slots are
	// atomic pointers because the accept loop swaps in replacement links
	// when a crashed peer rejoins with a higher epoch, racing the engine
	// goroutine's sends; the data path pays one atomic load per access and
	// keeps its zero-allocation steady state.
	peers   []atomic.Pointer[peerConn]
	inbox   chan cluster.Message
	pending []cluster.Message
	commSec float64
	inj     *faults.Injector
	procs   int
	wire    WireSpec

	hbTimeout time.Duration

	// Reconnect support: the listener stays open for the whole run, the
	// accept loop authenticates replacement hellos under meshMu, and
	// detachedFrames accumulates the frame counts of links retired by a
	// swap so framesSentTotal stays complete.
	meshMu         sync.Mutex
	outCap         int
	myHello        Frame
	nodeCfg        NodeConfig
	detachedFrames atomic.Int64

	// Batch accumulation: per-destination pending messages, flushed into a
	// single FrameBatch when a size cap trips, when the engine is about to
	// block in a receive (the iteration boundary — both sides flush before
	// blocking, so batching can never deadlock the exchange), or when the
	// linger loop finds a batch that has waited long enough. batchMu covers
	// the engine goroutine and the linger goroutine.
	batchMu    sync.Mutex
	pend       [][]cluster.Message // pooled slices, nil when batching is off
	pendBytes  []int
	pendSince  []time.Time
	lingerStop chan struct{}

	// lat collects per-message delivery latencies (DeliveredAt − SentAt),
	// engine goroutine only.
	lat []float64

	// timers tracks outstanding injector-delayed sends so close can stop
	// them instead of leaking AfterFunc callbacks past the run.
	timersMu sync.Mutex
	timers   []*time.Timer
	closed   bool

	msgsSent, msgsRecvd, bytesSent int
	drops                          int // sends the injector suppressed

	obsMsgsSent  *obs.Counter
	obsBytesSent *obs.Counter

	// wobs is the wire-plane instrument set (nil when uninstrumented);
	// journal + traceWire gate send/deliver trace events for the fleet
	// trace merge.
	wobs      *wireObs
	journal   *obs.Journal
	traceWire bool
}

var _ cluster.Transport = (*transport)(nil)

// peer returns the current link to rank j (nil at own index).
func (t *transport) peer(j int) *peerConn { return t.peers[j].Load() }

// swapPeer installs pc as the link to its rank, retiring any previous
// link: its frame counter is folded into detachedFrames and it is closed
// in the background (close drains the writer, which can block briefly on a
// dead socket's write deadline).
func (t *transport) swapPeer(pc *peerConn) {
	if old := t.peers[pc.rank].Swap(pc); old != nil {
		go func() {
			old.close()
			t.detachedFrames.Add(old.framesSent.Load())
		}()
	}
}

func (t *transport) ID() int      { return t.rank }
func (t *transport) P() int       { return t.p }
func (t *transport) Now() float64 { return time.Since(t.start).Seconds() }

// Compute is a no-op: wall-clock substrate, the app's real CPU time is the
// cost.
func (t *transport) Compute(float64, cluster.Phase) {}

func (t *transport) Send(dst, tag, iter int, data []float64) {
	payload := make([]float64, len(data))
	copy(payload, data)
	t.SendShared(dst, tag, iter, payload)
}

// SendShared enqueues the message with its payload aliased: serialization
// in the writer goroutine is the copy, under the engine's guarantee that a
// shared payload is never mutated after the send.
func (t *transport) SendShared(dst, tag, iter int, data []float64) {
	if dst < 0 || dst >= t.p {
		panic(fmt.Sprintf("distnet: Send to invalid processor %d", dst))
	}
	m := cluster.Message{Src: t.rank, Dst: dst, Tag: tag, Iter: iter, Epoch: t.epoch, Data: data, SentAt: t.Now()}
	bytes := 8*len(data) + 64 // logical accounting parity with the simulator's default framing
	t.msgsSent++
	t.bytesSent += bytes
	t.obsMsgsSent.Inc()
	t.obsBytesSent.Add(float64(bytes))
	if t.traceWire {
		t.journal.Record(obs.Event{T: m.SentAt, Proc: t.rank, Kind: obs.EvSend, Iter: iter, Peer: dst, V: float64(tag)})
	}
	pc := t.peer(dst)
	if t.inj == nil {
		t.enqueueData(pc, m, bytes)
		return
	}
	// Fault injection is per message, not per frame: each logical message is
	// planned individually (parity with the simulator's DeliveriesOf), and
	// only the surviving immediate copies enter a batch. Delayed copies ship
	// as single frames when their timers fire — they have, by construction,
	// already left the iteration's coalescing window.
	plan := t.inj.Plan(t.rank, dst, bytes, t.procs, m.SentAt)
	if len(plan) == 0 {
		t.drops++
		return
	}
	for _, d := range plan {
		if d <= 0 {
			t.enqueueData(pc, m, bytes)
			continue
		}
		t.holdBack(pc, Frame{Type: FrameData, Msg: m}, d)
	}
}

// enqueueData queues one data message on its link: appended to the pending
// batch when the link negotiated batching, a single frame otherwise. Size
// caps flush inline.
func (t *transport) enqueueData(pc *peerConn, m cluster.Message, bytes int) {
	if !pc.opts.batch {
		pc.send(Frame{Type: FrameData, Msg: m})
		return
	}
	dst := pc.rank
	t.batchMu.Lock()
	if len(t.pend[dst]) == 0 {
		t.pendSince[dst] = time.Now()
	}
	t.pend[dst] = append(t.pend[dst], m)
	t.pendBytes[dst] += bytes
	var f Frame
	flush := false
	if len(t.pend[dst]) >= t.wire.MaxBatchMsgs {
		f, flush = t.popLocked(dst, flushMsgs)
	} else if t.pendBytes[dst] >= t.wire.MaxBatchBytes {
		f, flush = t.popLocked(dst, flushBytes)
	}
	t.batchMu.Unlock()
	if flush {
		pc.send(f)
	}
}

// popLocked removes and returns dst's pending batch as a ready-to-send
// frame (a plain data frame when only one message is pending), recording
// the flush reason and batch occupancy. Caller holds batchMu.
func (t *transport) popLocked(dst, reason int) (Frame, bool) {
	msgs := t.pend[dst]
	if len(msgs) == 0 {
		return Frame{}, false
	}
	t.wobs.noteFlush(reason, len(msgs))
	t.pend[dst] = getBatch()
	t.pendBytes[dst] = 0
	if len(msgs) == 1 {
		m := msgs[0]
		releaseBatch(msgs)
		return Frame{Type: FrameData, Msg: m}, true
	}
	return Frame{Type: FrameBatch, Batch: msgs}, true
}

// flushAll pushes every pending batch onto its link. The engine calls it on
// entry to a blocking receive: at that point it has said everything it has
// to say this iteration, and the peer may be waiting on exactly these
// messages.
func (t *transport) flushAll(reason int) {
	if t.pend == nil {
		return
	}
	t.batchMu.Lock()
	for dst := range t.pend {
		if f, ok := t.popLocked(dst, reason); ok {
			t.peer(dst).send(f)
		}
	}
	t.batchMu.Unlock()
}

// lingerLoop flushes batches that have waited past the linger budget —
// the backstop for messages enqueued while the engine computes on without
// blocking (speculative sends mid-iteration).
func (t *transport) lingerLoop() {
	linger := time.Duration(t.wire.LingerUS) * time.Microsecond
	tickEvery := linger
	if tickEvery < time.Millisecond {
		tickEvery = time.Millisecond // bound wakeup rate at large P
	}
	tick := time.NewTicker(tickEvery)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			now := time.Now()
			t.batchMu.Lock()
			for dst := range t.pend {
				if len(t.pend[dst]) > 0 && now.Sub(t.pendSince[dst]) >= linger {
					if f, ok := t.popLocked(dst, flushLinger); ok {
						t.peer(dst).send(f)
					}
				}
			}
			t.batchMu.Unlock()
		case <-t.lingerStop:
			return
		}
	}
}

// holdBack schedules a delayed transmission of one planned copy.
func (t *transport) holdBack(pc *peerConn, f Frame, delaySec float64) {
	t.timersMu.Lock()
	defer t.timersMu.Unlock()
	if t.closed {
		return
	}
	t.timers = append(t.timers, time.AfterFunc(
		time.Duration(delaySec*float64(time.Second)),
		func() { pc.send(f) },
	))
}

func (t *transport) takePending(src, tag int) (cluster.Message, bool) {
	for i, m := range t.pending {
		if matches(m, src, tag) {
			t.pending = append(t.pending[:i], t.pending[i+1:]...)
			t.msgsRecvd++
			return m, true
		}
	}
	return cluster.Message{}, false
}

func matches(m cluster.Message, src, tag int) bool {
	return (src == cluster.Any || m.Src == src) && (tag == cluster.Any || m.Tag == tag)
}

// popped stamps a message just pulled off the inbox and records its
// delivery latency (clamped at zero: SentAt and DeliveredAt are measured on
// different processes' clocks).
func (t *transport) popped(m *cluster.Message) {
	m.DeliveredAt = t.Now()
	d := m.DeliveredAt - m.SentAt
	if d < 0 {
		d = 0
	}
	t.lat = append(t.lat, d)
	t.wobs.link(m.Src).observeLatency(d)
	if t.traceWire {
		t.journal.Record(obs.Event{T: m.DeliveredAt, Proc: t.rank, Kind: obs.EvDeliver, Iter: m.Iter, Peer: m.Src, V: d})
	}
}

// TryRecv polls without flushing pending batches: a poll is not a
// commitment to wait, and flushing here would defeat coalescing (the engine
// polls between speculative iterations).
func (t *transport) TryRecv(src, tag int) (cluster.Message, bool) {
	if m, ok := t.takePending(src, tag); ok {
		return m, true
	}
	for {
		select {
		case m := <-t.inbox:
			t.popped(&m)
			if matches(m, src, tag) {
				t.msgsRecvd++
				return m, true
			}
			t.pending = append(t.pending, m)
		default:
			return cluster.Message{}, false
		}
	}
}

func (t *transport) Recv(src, tag int) cluster.Message {
	if m, ok := t.takePending(src, tag); ok {
		return m
	}
	t.flushAll(flushRecv) // about to block: everything we owe the mesh goes out first
	before := time.Now()
	defer func() { t.commSec += time.Since(before).Seconds() }()
	for {
		m := <-t.inbox
		t.popped(&m)
		if matches(m, src, tag) {
			t.msgsRecvd++
			return m
		}
		t.pending = append(t.pending, m)
	}
}

func (t *transport) RecvDeadline(src, tag int, timeout float64) (cluster.Message, bool) {
	if m, ok := t.takePending(src, tag); ok {
		return m, true
	}
	t.flushAll(flushRecv) // about to block: everything we owe the mesh goes out first
	before := time.Now()
	defer func() { t.commSec += time.Since(before).Seconds() }()
	deadline := before.Add(time.Duration(timeout * float64(time.Second)))
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return cluster.Message{}, false
		}
		timer := time.NewTimer(remaining)
		select {
		case m := <-t.inbox:
			timer.Stop()
			t.popped(&m)
			if matches(m, src, tag) {
				t.msgsRecvd++
				return m, true
			}
			t.pending = append(t.pending, m)
		case <-timer.C:
			return cluster.Message{}, false
		}
	}
}

func (t *transport) PhaseTime(ph cluster.Phase) float64 {
	if ph == cluster.PhaseComm {
		return t.commSec
	}
	return 0
}

// PeerDown implements core.FailureDetector over heartbeat staleness: a peer
// whose link errored out, or that has been silent past HeartbeatTimeout, is
// reported down — feeding the engine's crash-bridging machinery exactly as
// the simulator's perfect detector does, with the usual real-network caveat
// that silence is a suspicion, not a proof.
func (t *transport) PeerDown(peer int) bool {
	if peer < 0 || peer >= t.p || peer == t.rank {
		return false
	}
	return !t.peer(peer).alive(t.hbTimeout)
}

// Epoch implements core.Epocher: the process incarnation stamped on
// messages and checkpoints.
func (t *transport) Epoch() int { return t.epoch }

// NetStats implements core.NetStatser.
func (t *transport) NetStats() cluster.NetStats {
	return cluster.NetStats{
		MsgsSent:  t.msgsSent,
		MsgsRecvd: t.msgsRecvd,
		BytesSent: t.bytesSent,
	}
}

// reader pumps one peer link into the shared inbox until the link dies. A
// persistent Decoder carries the link's payload buffer and — when delta
// coding is negotiated — its per-stream bases across frames. Payload rows
// are freshly allocated per message (Reuse off): the engine adopts them.
func (t *transport) reader(pc *peerConn) {
	dec := NewDecoder(bufio.NewReaderSize(pc.conn, 64<<10))
	dec.Track = t.wire.Delta // we advertised CapDelta iff the spec asks for delta
	var f Frame
	for {
		if err := dec.Decode(&f); err != nil {
			pc.down.Store(true)
			return
		}
		pc.touch()
		switch f.Type {
		case FrameData:
			if !t.deliver(pc, f.Msg) {
				return
			}
		case FrameBatch:
			for _, m := range f.Batch {
				if !t.deliver(pc, m) {
					return
				}
			}
		case FrameHeartbeat:
			// touch above is the liveness half; the clock tail (if any)
			// feeds the link's offset estimator.
			pc.noteHeartbeat(f.Clock)
		case FrameShutdown:
			pc.down.Store(true)
			return
		default:
			// Unknown control on a peer link: tolerate (forward compat).
		}
	}
}

// deliver hands one received message to the engine's inbox, reporting false
// when the link is being torn down.
func (t *transport) deliver(pc *peerConn, m cluster.Message) bool {
	select {
	case t.inbox <- m:
		return true
	case <-pc.stop:
		return false
	}
}

// framesSentTotal sums the physical frames written across all peer links,
// including links retired by a reconnect swap.
func (t *transport) framesSentTotal() int {
	n := t.detachedFrames.Load()
	for j := range t.peers {
		if pc := t.peer(j); pc != nil {
			n += pc.framesSent.Load()
		}
	}
	return int(n)
}

// latPercentile returns the q-quantile of the collected delivery latencies
// (sorting in place on first use).
func latPercentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// close tears down every peer link and cancels injector-held sends, pushing
// any still-pending batches out first (shutdown must not strand messages a
// slower peer is waiting for).
func (t *transport) close() {
	if t.lingerStop != nil {
		select {
		case <-t.lingerStop:
		default:
			close(t.lingerStop)
		}
	}
	t.flushAll(flushClose)
	t.timersMu.Lock()
	t.closed = true
	timers := t.timers
	t.timers = nil
	t.timersMu.Unlock()
	for _, tm := range timers {
		tm.Stop()
	}
	for j := range t.peers {
		if pc := t.peer(j); pc != nil {
			pc.close()
		}
	}
}

// coordStore adapts the coordinator connection to checkpoint.Store: Save
// ships snapshots into coordinator custody; Load returns the snapshot the
// coordinator handed back in the config frame (the restore path for a
// relaunched node).
type coordStore struct {
	rank    int
	coord   *peerConn
	initial []byte
}

func (s *coordStore) Save(proc int, blob []byte) {
	cp := append([]byte(nil), blob...)
	s.coord.send(Frame{Type: FrameCheckpoint, Rank: proc, Blob: cp})
}

func (s *coordStore) Load(proc int) ([]byte, bool) {
	if proc != s.rank || len(s.initial) == 0 {
		return nil, false
	}
	return s.initial, true
}

// RunNode joins the coordinator at cfg.Coord, participates in one full run,
// and returns this process's outcome. It blocks until the coordinator
// releases the shutdown (so no node tears its links down while a slower
// peer still needs them).
func RunNode(cfg NodeConfig) (*NodeResult, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}

	// Listen for peers first: the listen address travels in the hello.
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("distnet: peer listener: %w", err)
	}
	defer ln.Close()

	// Join the coordinator.
	coordRaw, err := dialRetry(cfg.Coord, cfg.DialTimeout, cfg.Logf)
	if err != nil {
		return nil, err
	}
	coord := newPeerConn(-1, coordRaw, 64, wireOpts{})
	defer coord.close()
	// The coordinator link is control plane — no batching — but the hello
	// still advertises the build's full capability set.
	coord.send(Frame{Type: FrameHello, Rank: -1, Epoch: cfg.Epoch, Addr: ln.Addr().String(), Caps: CapBatch | CapDelta | CapObs})

	// The config frame assigns our rank and carries the membership + spec.
	cf, err := readConfig(coordRaw, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	var wc wireConfig
	if err := json.Unmarshal(cf.Blob, &wc); err != nil {
		return nil, fmt.Errorf("distnet: decoding config: %w", err)
	}
	spec := wc.Spec
	rank, p := wc.Rank, spec.Procs
	if rank < 0 || rank >= p || len(wc.Peers) != p {
		return nil, fmt.Errorf("distnet: inconsistent config (rank %d of %d, %d peers)", rank, p, len(wc.Peers))
	}
	cfg.logf("rank %d/%d assigned, peers %v", rank, p, wc.Peers)

	// Observability first: registry and journal exist before the mesh so
	// link construction, dial retries and the links themselves are
	// instrumented from the first frame.
	reg := obs.NewRegistry()
	journal := obs.NewJournal()
	core.RegisterEngineMetrics(reg, rank)
	lp := obs.L("proc", strconv.Itoa(rank))
	if cfg.JournalDir != "" {
		if err := os.MkdirAll(cfg.JournalDir, 0o755); err != nil {
			return nil, fmt.Errorf("distnet: journal dir: %w", err)
		}
		jw, err := obs.NewJournalWriter(
			filepath.Join(cfg.JournalDir, fmt.Sprintf("node-%d.jsonl", rank)), cfg.JournalMaxBytes)
		if err != nil {
			return nil, err
		}
		defer jw.Close() // flushes buffered tail events on every exit path
		journal.Attach(jw)
		if !spec.Trace {
			// The file keeps full history; memory keeps a bounded tail.
			journal.Limit(4096)
		}
	}

	// Build the transport around the mesh.
	outCap := 2*spec.MaxIter + 64
	tr := &transport{
		rank: rank, p: p, epoch: cfg.Epoch,
		peers:     make([]atomic.Pointer[peerConn], p),
		inbox:     make(chan cluster.Message, p*(spec.MaxIter+16)),
		inj:       faults.NewInjector(cfg.Faults, cfg.FaultSeed),
		procs:     p,
		wire:      spec.Wire,
		hbTimeout: cfg.HeartbeatTimeout,
		outCap:    outCap,
		nodeCfg:   cfg,
		wobs:      newWireObs(reg, rank, p),
		journal:   journal,
		traceWire: spec.Trace,
	}
	if !spec.Wire.NoBatch {
		tr.pend = make([][]cluster.Message, p)
		for i := range tr.pend {
			tr.pend[i] = getBatch()
		}
		tr.pendBytes = make([]int, p)
		tr.pendSince = make([]time.Time, p)
		tr.lingerStop = make(chan struct{})
	}
	if wc.Rejoin {
		cfg.logf("rank %d: rejoining a run in flight (epoch %d), dialing all survivors", rank, cfg.Epoch)
	}
	if err := tr.connectMesh(ln, wc.Peers, cfg, wc.Rejoin); err != nil {
		tr.close()
		return nil, err
	}
	// The listener stays open for the rest of the run: a crashed peer's
	// replacement incarnation reconnects through it.
	go tr.acceptLoop(ln)
	for j := range tr.peers {
		pc := tr.peer(j)
		if pc == nil {
			continue
		}
		go tr.reader(pc)
		go pc.heartbeater(cfg.HeartbeatEvery)
	}
	if tr.lingerStop != nil {
		go tr.lingerLoop()
	}
	// Heartbeat the coordinator link too: its liveness window (the
	// coordinator's NodeTimeout) is how a hung node is detected without
	// waiting for the global run timeout. Beacons piggyback on control
	// traffic, so an active link costs nothing extra.
	go coord.heartbeater(cfg.HeartbeatEvery)

	// Control-plane reader for the coordinator link.
	barrierCh := make(chan int, 8)
	shutdownCh := make(chan struct{})
	go func() {
		br := bufio.NewReader(coordRaw)
		for {
			f, err := readFrame(br)
			if err != nil {
				coord.down.Store(true)
				close(shutdownCh) // a dead coordinator ends the run
				return
			}
			coord.touch()
			switch f.Type {
			case FrameBarrier:
				barrierCh <- f.Seq
			case FrameShutdown:
				close(shutdownCh)
				return
			}
		}
	}()

	// Transport accounting counters + optional live HTTP endpoint — the
	// same artifacts a simulated run emits.
	tr.obsMsgsSent = reg.Counter(cluster.MetricMsgsSent, "logical messages passed to Send", lp)
	tr.obsBytesSent = reg.Counter(cluster.MetricBytesSent, "payload+header bytes of logical sends", lp)
	reg.Gauge(MetricNodeEpoch, "Process incarnation epoch (0 on first launch).", lp).Set(float64(cfg.Epoch))
	httpAddr := ""
	if cfg.HTTPAddr != "" {
		srv, err := realtime.ServeObs(cfg.HTTPAddr, reg, journal)
		if err != nil {
			tr.close()
			return nil, fmt.Errorf("distnet: obs endpoint: %w", err)
		}
		defer srv.Close()
		httpAddr = srv.Addr()
		cfg.logf("rank %d serving /metrics and /journal on http://%s", rank, httpAddr)
	}

	// Metrics push loop: when the coordinator advertised CapObs, ship it a
	// full registry snapshot (Prometheus text) every ObsPushMS so the fleet
	// endpoint stays fresh while the run is live. A final push after the
	// engine finishes precedes the result frame on the same TCP stream, so
	// the coordinator always aggregates complete end-of-run counters.
	pushSnapshot := func() {
		// Count the push before rendering so the snapshot includes itself —
		// the final end-of-run push must not report one less than reality.
		tr.wobs.notePush()
		var buf bytes.Buffer
		if err := reg.WriteProm(&buf); err != nil {
			return
		}
		coord.send(Frame{Type: FrameObs, Rank: rank, Blob: append([]byte(nil), buf.Bytes()...)})
	}
	var pushStop, pushDone chan struct{}
	if wc.CoordCaps&CapObs != 0 && spec.ObsPushMS > 0 {
		pushStop = make(chan struct{})
		pushDone = make(chan struct{})
		go func() {
			defer close(pushDone)
			tk := time.NewTicker(time.Duration(spec.ObsPushMS) * time.Millisecond)
			defer tk.Stop()
			for {
				select {
				case <-tk.C:
					pushSnapshot()
				case <-pushStop:
					return
				}
			}
		}()
	}

	// Start barrier: every node reports its mesh up; the coordinator
	// releases them together so no engine races ahead of a half-built mesh.
	coord.send(Frame{Type: FrameBarrier, Seq: 0})
	select {
	case <-barrierCh:
	case <-shutdownCh:
		tr.close()
		return nil, fmt.Errorf("distnet: coordinator went away before the start barrier")
	case <-time.After(cfg.DialTimeout + 30*time.Second):
		tr.close()
		return nil, fmt.Errorf("distnet: start barrier timed out")
	}

	app, err := BuildApp(spec, rank)
	if err != nil {
		tr.close()
		return nil, err
	}
	var store checkpoint.Store
	if spec.CheckpointEvery > 0 {
		store = &coordStore{rank: rank, coord: coord, initial: wc.Checkpoint}
	}
	ecfg := spec.CoreConfig(reg, journal, store)

	tr.start = time.Now()
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	res, runErr := core.Run(tr, app, ecfg)
	runtime.ReadMemStats(&msAfter)
	wall := time.Since(tr.start)
	if runErr != nil {
		tr.close()
		return nil, fmt.Errorf("distnet: rank %d engine: %w", rank, runErr)
	}

	// Wire-plane throughput measures for the soak harness: delivery-latency
	// percentiles, physical frame count (batching ⇒ frames ≪ messages), and
	// whole-process allocations per message over the run.
	sort.Float64s(tr.lat)
	allocsPerMsg := 0.0
	if n := tr.msgsSent + tr.msgsRecvd; n > 0 {
		allocsPerMsg = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(n)
	}

	// Harvest the per-link clock-offset estimates (peer clock minus ours)
	// for the trace merge, publishing them as gauges too.
	clockOff := make([]float64, p)
	clockRTT := make([]float64, p)
	for j := range tr.peers {
		pc := tr.peer(j)
		if pc == nil {
			continue
		}
		if off, rtt, ok := pc.clockOffset(); ok {
			clockOff[j], clockRTT[j] = off, rtt
			pc.opts.obs.setClock(off, rtt)
		}
	}

	// Stop the push loop, then send one final snapshot so the aggregated
	// endpoint reflects the finished run before the result lands.
	if pushStop != nil {
		close(pushStop)
		<-pushDone
		pushSnapshot()
	}

	var traceEvents []obs.Event
	if spec.Trace {
		traceEvents = journal.Events()
	}

	// Report the outcome, then hold the mesh open until the coordinator
	// confirms every node is done.
	coord.send(Frame{Type: FrameResult, Blob: encodeJSON(resultMsg{
		Rank: rank, HTTP: httpAddr, Epoch: cfg.Epoch, Restores: res.Stats.Restores,
		Converged: res.Converged, Iters: res.Stats.Iters,
		SpecsMade: res.Stats.SpecsMade, SpecsBad: res.Stats.SpecsBad,
		Repairs: res.Stats.Repairs, Overruns: res.Stats.Overruns,
		WallSec: wall.Seconds(), CommSec: res.Stats.CommTime,
		MsgsSent: res.Stats.Net.MsgsSent, BytesSent: res.Stats.Net.BytesSent,
		MsgsRecvd:    tr.msgsRecvd,
		FramesSent:   tr.framesSentTotal(),
		LatP50Sec:    latPercentile(tr.lat, 0.50),
		LatP99Sec:    latPercentile(tr.lat, 0.99),
		AllocsPerMsg: allocsPerMsg,
		StartUnix:    float64(tr.start.UnixNano()) / 1e9,
		ClockOff:     clockOff,
		ClockRTT:     clockRTT,
		Journal:      traceEvents,
		Final:        res.Final,
	})})
	select {
	case <-shutdownCh:
	case <-time.After(60 * time.Second):
		cfg.logf("rank %d: shutdown wait timed out, tearing down anyway", rank)
	}
	tr.close()
	return &NodeResult{Rank: rank, HTTPAddr: httpAddr, Result: res, Wall: wall}, nil
}

// readConfig reads the coordinator's config frame with a deadline.
func readConfig(conn net.Conn, timeout time.Duration) (Frame, error) {
	if timeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(timeout))
		defer conn.SetReadDeadline(time.Time{})
	}
	f, err := readFrame(conn)
	if err != nil {
		return Frame{}, fmt.Errorf("distnet: reading config: %w", err)
	}
	if f.Type != FrameConfig {
		return Frame{}, fmt.Errorf("distnet: expected config, got %v frame", f.Type)
	}
	return f, nil
}

// connectMesh establishes one TCP link per peer pair. On a fresh run this
// node dials every lower rank (which is already listening) and accepts one
// connection from every higher rank. On a rejoin the run is already in
// flight and every survivor is listening, so this node dials ALL peers;
// their accept loops authenticate the higher-epoch hello and swap out the
// stale link. Each link opens with a hello exchange — the dialer
// introduces itself, the acceptor replies with its own hello — so both
// sides learn the peer's capability mask and the link's frame shape
// (batching, delta) is the negotiated intersection.
func (t *transport) connectMesh(ln net.Listener, peers []string, cfg NodeConfig, rejoin bool) error {
	rank, p := t.rank, t.p
	caps := localCaps(t.wire)
	t.myHello = Frame{Type: FrameHello, Rank: rank, Epoch: t.epoch, Addr: peers[rank], Caps: caps}
	myHello := t.myHello

	type dialed struct {
		rank  int
		conn  net.Conn
		hello Frame
		err   error
	}
	dialTo := 0 // fresh run: dial [0, rank)
	if rejoin {
		dialTo = p // rejoin: dial everyone but self
	} else {
		dialTo = rank
	}
	ch := make(chan dialed, p)
	dials := 0
	for j := 0; j < dialTo; j++ {
		if j == rank {
			continue
		}
		j := j
		dials++
		go func() {
			conn, hello, err := t.dialPeer(peers[j], j, myHello, cfg)
			ch <- dialed{rank: j, conn: conn, hello: hello, err: err}
		}()
	}

	// Accept the higher ranks while the dials run (fresh run only; a
	// rejoiner reaches every peer by dialing).
	accepts := 0
	if !rejoin {
		accepts = p - 1 - rank
	}
	acceptErr := make(chan error, 1)
	go func() {
		for need := accepts; need > 0; need-- {
			_ = setAcceptDeadline(ln, time.Now().Add(cfg.DialTimeout+30*time.Second))
			conn, err := ln.Accept()
			if err != nil {
				acceptErr <- fmt.Errorf("distnet: accepting peer: %w", err)
				return
			}
			hello, err := readHello(conn, cfg.DialTimeout)
			if err != nil {
				conn.Close()
				acceptErr <- err
				return
			}
			if hello.Rank <= rank || hello.Rank >= p {
				conn.Close()
				acceptErr <- fmt.Errorf("distnet: unexpected hello from rank %d", hello.Rank)
				return
			}
			if t.peer(hello.Rank) != nil {
				conn.Close()
				acceptErr <- fmt.Errorf("distnet: duplicate connection from rank %d", hello.Rank)
				return
			}
			if _, err := writeFrame(conn, nil, &myHello); err != nil {
				conn.Close()
				acceptErr <- fmt.Errorf("distnet: hello reply to rank %d: %w", hello.Rank, err)
				return
			}
			t.installPeer(hello.Rank, conn, hello)
		}
		acceptErr <- nil
	}()

	var firstErr error
	for i := 0; i < dials; i++ {
		d := <-ch
		if d.err != nil {
			if firstErr == nil {
				firstErr = d.err
			}
			continue
		}
		t.installPeer(d.rank, d.conn, d.hello)
	}
	if err := <-acceptErr; err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// installPeer wires a freshly handshaken connection in as the link to the
// hello sender's rank.
func (t *transport) installPeer(j int, conn net.Conn, hello Frame) *peerConn {
	pc := newPeerConn(j, conn, t.outCap, t.linkOptsFor(hello.Caps, j))
	pc.epoch = hello.Epoch
	t.swapPeer(pc)
	return pc
}

// acceptLoop serves inbound peer connections for the rest of the run —
// the reconnect path a rejoining peer takes after a crash. It exits when
// the listener closes at teardown.
func (t *transport) acceptLoop(ln net.Listener) {
	_ = setAcceptDeadline(ln, time.Time{}) // clear the mesh-build deadline
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go t.acceptReplacement(conn)
	}
}

// acceptReplacement authenticates one inbound connection as a rejoining
// peer and swaps it in over the stale link. The epoch rule is the guard:
// only a hello from a strictly newer incarnation of the peer may replace
// the current link, so duplicate dials and a dead incarnation's late
// packets can never tear down a healthy connection.
func (t *transport) acceptReplacement(conn net.Conn) {
	cfg := t.nodeCfg
	hello, err := readHello(conn, cfg.DialTimeout)
	if err != nil {
		conn.Close()
		return
	}
	j := hello.Rank
	if j < 0 || j >= t.p || j == t.rank {
		conn.Close()
		return
	}
	t.timersMu.Lock()
	closing := t.closed
	t.timersMu.Unlock()
	if closing {
		conn.Close()
		return
	}
	t.meshMu.Lock()
	if cur := t.peer(j); cur != nil && hello.Epoch <= cur.epoch {
		t.meshMu.Unlock()
		conn.Close() // stale or duplicate incarnation
		return
	}
	if _, err := writeFrame(conn, nil, &t.myHello); err != nil {
		t.meshMu.Unlock()
		conn.Close()
		return
	}
	pc := t.installPeer(j, conn, hello)
	t.meshMu.Unlock()
	t.wobs.noteReconnect()
	cfg.logf("rank %d: peer %d reconnected with epoch %d, stale link retired", t.rank, j, hello.Epoch)
	go t.reader(pc)
	go pc.heartbeater(cfg.HeartbeatEvery)
}

// linkOptsFor negotiates the link shape with peer j and attaches the link's
// instrumentation handle.
func (t *transport) linkOptsFor(remoteCaps uint32, j int) wireOpts {
	o := linkOpts(t.wire, remoteCaps)
	o.obs = t.wobs.link(j)
	return o
}

// dialPeer dials rank j, sends our hello and reads the reply, returning the
// peer's hello (capability mask + incarnation epoch). The error taxonomy is
// load-bearing here: a reply cut off mid-frame (io.ErrUnexpectedEOF — the
// peer was tearing down a half-open accept, or the connection raced its
// listener) is retried on a fresh connection within the dial budget, while
// a corrupt reply (ErrCorrupt — wrong process, protocol desync) fails the
// mesh immediately.
func (t *transport) dialPeer(addr string, j int, myHello Frame, cfg NodeConfig) (net.Conn, Frame, error) {
	deadline := time.Now().Add(cfg.DialTimeout)
	var lastErr error
	for attempt := 0; ; attempt++ {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, Frame{}, fmt.Errorf("distnet: hello exchange with rank %d: %w", j, lastErr)
		}
		t.wobs.noteDial()
		conn, err := dialRetry(addr, remain, cfg.Logf)
		if err != nil {
			return nil, Frame{}, err
		}
		if _, err := writeFrame(conn, nil, &myHello); err != nil {
			conn.Close()
			return nil, Frame{}, fmt.Errorf("distnet: hello to rank %d: %w", j, err)
		}
		reply, err := readHello(conn, time.Until(deadline))
		if err == nil {
			if reply.Rank != j {
				conn.Close()
				return nil, Frame{}, fmt.Errorf("distnet: dialed rank %d but got hello from rank %d", j, reply.Rank)
			}
			return conn, reply, nil
		}
		conn.Close()
		if errors.Is(err, ErrCorrupt) {
			return nil, Frame{}, err // desynchronized stream: fatal, never retried
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) && !isTimeout(err) {
			return nil, Frame{}, err
		}
		lastErr = err
		t.wobs.noteHelloRetry()
		time.Sleep(time.Duration(25<<min(attempt, 5)) * time.Millisecond)
	}
}

// isTimeout reports whether err is a network timeout (deadline expiry on
// the hello read — retryable within the dial budget).
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// setAcceptDeadline applies a deadline when the listener supports it.
func setAcceptDeadline(ln net.Listener, t time.Time) error {
	if tl, ok := ln.(*net.TCPListener); ok {
		return tl.SetDeadline(t)
	}
	return nil
}
