package distnet

// Per-peer TCP connection management: dialing with retry and exponential
// backoff, a buffered writer goroutine per link, heartbeats, and dead-peer
// detection. One TCP connection serves each unordered pair of processors
// (the lower rank accepts, the higher rank dials); both directions flow on
// it.

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"specomp/internal/trace"
)

// Connection-state machine of one peer link:
//
//	dialing ──dial ok──▶ handshaking ──hello──▶ up ──read error/close──▶ down
//	   │  ▲                                     │
//	   └──┘ retry with exponential backoff      └─ heartbeat staleness ⇒ suspected
//
// "suspected" is soft: PeerDown reports it to the engine's failure
// detector, but the link keeps trying until a hard read/write error lands.

// dialRetry dials addr until it succeeds or total elapses, backing off
// exponentially from 25 ms to 1 s between attempts. It tolerates the target
// not listening yet — nodes of a run start in arbitrary order.
func dialRetry(addr string, total time.Duration, logf func(string, ...any)) (net.Conn, error) {
	deadline := time.Now().Add(total)
	backoff := 25 * time.Millisecond
	var lastErr error
	for attempt := 0; ; attempt++ {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, fmt.Errorf("distnet: dialing %s: %w", addr, lastErr)
		}
		c, err := net.DialTimeout("tcp", addr, remain)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if attempt == 0 && logf != nil {
			logf("dial %s failed (%v), retrying with backoff", addr, err)
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > time.Second {
			backoff = time.Second
		}
	}
}

// wireOpts is the per-link frame shape negotiated from the hello exchange
// (the intersection of what this side wants and what the peer advertised)
// plus the link's local instrumentation handle.
type wireOpts struct {
	batch bool // peer decodes FrameBatch
	delta bool // peer decodes delta-coded batch entries
	clock bool // peer decodes timestamped heartbeats (CapObs)
	obs   *linkObs
}

// linkOpts intersects the local wire configuration with a peer's advertised
// capability mask.
func linkOpts(w WireSpec, remoteCaps uint32) wireOpts {
	return wireOpts{
		batch: !w.NoBatch && remoteCaps&CapBatch != 0,
		delta: w.Delta && remoteCaps&CapDelta != 0,
		clock: remoteCaps&CapObs != 0,
	}
}

// localCaps is the capability mask this side advertises in its hellos.
func localCaps(w WireSpec) uint32 {
	caps := CapBatch | CapObs
	if w.Delta {
		caps |= CapDelta
	}
	return caps
}

// peerConn is one live link to a peer (or to the coordinator, rank -1).
type peerConn struct {
	rank int
	// epoch is the peer incarnation this link was negotiated with; a
	// replacement connection must present a strictly higher one (stale
	// reconnect attempts from a dead incarnation are refused).
	epoch int
	conn  net.Conn
	opts  wireOpts

	// out feeds the writer goroutine. Sends block when full — TCP
	// backpressure, propagated to the engine. Liveness never competes with
	// this queue: every outbound frame refreshes the peer's staleness
	// clock, and explicit heartbeats are only emitted on idle links.
	out  chan Frame
	stop chan struct{} // closed once (via closeOnce), tears the writer down
	done chan struct{} // closed by the writer on exit

	closeOnce sync.Once

	// lastSeen is the unix-nano receive time of the most recent frame,
	// maintained by the owner's reader; it feeds heartbeat-staleness
	// detection.
	lastSeen atomic.Int64
	// lastSent is the unix-nano enqueue time of the most recent outbound
	// frame; the heartbeater skips beacons while data traffic is already
	// proving liveness (piggybacked heartbeats).
	lastSent atomic.Int64
	// framesSent counts frames written to the socket, for observability
	// (batching shows up as framesSent ≪ messages sent).
	framesSent atomic.Int64
	// down latches on a hard read/write error or remote close.
	down atomic.Bool

	// Clock-sync state (CapObs links). The reader stores the last stamp the
	// peer sent plus its local arrival time; the next outbound beacon echoes
	// them so the peer can close an NTP-style four-timestamp exchange. est
	// folds in completed exchanges this side observes.
	clkMu      sync.Mutex
	rxPeerSend float64 // peer's send stamp of the last timestamped beacon seen
	rxLocal    float64 // local unix time that beacon arrived
	est        trace.OffsetEstimator
}

func newPeerConn(rank int, conn net.Conn, outCap int, opts wireOpts) *peerConn {
	pc := &peerConn{
		rank: rank,
		conn: conn,
		opts: opts,
		out:  make(chan Frame, outCap),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	now := time.Now().UnixNano()
	pc.lastSeen.Store(now)
	pc.lastSent.Store(now)
	go pc.writer()
	return pc
}

// send enqueues a frame for transmission, blocking when the link is
// congested. Frames to a link already torn down are dropped — exactly what
// a crashed workstation does with packets addressed to it.
func (pc *peerConn) send(f Frame) {
	if pc.down.Load() {
		return
	}
	pc.lastSent.Store(time.Now().UnixNano())
	pc.opts.obs.setQueueDepth(len(pc.out))
	select {
	case pc.out <- f:
	case <-pc.stop:
	}
}

// writer drains the outgoing queue through one bufio.Writer, flushing
// whenever the queue momentarily empties (message boundaries coalesce under
// load, but nothing lingers unflushed). Batch frames hand their message
// slice back to the batch pool once encoded.
func (pc *peerConn) writer() {
	defer close(pc.done)
	bw := bufio.NewWriterSize(pc.conn, 64<<10)
	enc := NewEncoder(bw, pc.opts.delta)
	enc.instrumentDelta(pc.opts.obs)
	write := func(f *Frame) error {
		err := enc.Encode(f)
		if f.Batch != nil {
			releaseBatch(f.Batch)
		}
		if err == nil {
			pc.framesSent.Add(1)
			pc.opts.obs.noteFrame()
		}
		return err
	}
	for {
		select {
		case f := <-pc.out:
			err := write(&f)
			if err == nil && len(pc.out) == 0 {
				err = bw.Flush()
			}
			if err != nil {
				pc.down.Store(true)
				return
			}
		case <-pc.stop:
			// Drain anything enqueued before the close, then flush.
			for {
				select {
				case f := <-pc.out:
					if err := write(&f); err != nil {
						pc.down.Store(true)
						return
					}
				default:
					_ = bw.Flush()
					return
				}
			}
		}
	}
}

// close tears the link down: stops the writer (draining queued frames
// first) and closes the socket. A short write deadline unblocks a writer
// stuck flushing into a dead peer's full TCP window. Idempotent and safe to
// race — the coordinator's shutdown broadcast and a node's own teardown may
// both reach a link; every caller blocks until the writer has exited and
// the socket is closed.
func (pc *peerConn) close() {
	pc.closeOnce.Do(func() {
		_ = pc.conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		close(pc.stop)
	})
	<-pc.done
	_ = pc.conn.Close()
}

// alive reports whether the link looks healthy: no hard error, and a frame
// seen within timeout (0 disables the staleness check).
func (pc *peerConn) alive(timeout time.Duration) bool {
	if pc.down.Load() {
		return false
	}
	if timeout <= 0 {
		return true
	}
	return time.Since(time.Unix(0, pc.lastSeen.Load())) <= timeout
}

// touch records frame receipt for staleness detection.
func (pc *peerConn) touch() { pc.lastSeen.Store(time.Now().UnixNano()) }

// heartbeater emits liveness beacons every interval until stop closes —
// but only on idle links. Any outbound frame within the last interval
// already refreshes the peer's staleness clock (piggybacked liveness), so
// a link saturated with data pays nothing; and when a beacon is due, it is
// enqueued with the same blocking semantics as data. A backpressured link
// thus delivers its beacon as soon as the queue drains instead of silently
// starving its own liveness — the failure mode the old drop-on-congestion
// beacons had.
func (pc *peerConn) heartbeater(interval time.Duration) {
	if interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			// Clock-sync links beacon unconditionally — the stamps are the
			// offset estimator's sample stream, and their cost is one tiny
			// frame per interval. Plain links keep piggybacked liveness.
			if !pc.opts.clock && time.Since(time.Unix(0, pc.lastSent.Load())) < interval {
				continue // data traffic is the heartbeat
			}
			pc.send(pc.beacon())
			pc.opts.obs.noteHeartbeat()
		case <-pc.stop:
			return
		}
	}
}

// beacon builds the next outbound heartbeat. On clock-sync links it carries
// the three-stamp tail: our send time plus an echo of the last stamp the
// peer sent and when it arrived here, which lets the peer close a
// four-timestamp exchange on receipt.
func (pc *peerConn) beacon() Frame {
	f := Frame{Type: FrameHeartbeat}
	if pc.opts.clock {
		pc.clkMu.Lock()
		f.Clock = [3]float64{unixNow(), pc.rxPeerSend, pc.rxLocal}
		pc.clkMu.Unlock()
	}
	return f
}

// noteHeartbeat ingests a received heartbeat's clock tail: remembers the
// peer's stamp for echoing, and when the beacon echoes one of ours, folds
// the completed exchange into the offset estimate.
func (pc *peerConn) noteHeartbeat(clk [3]float64) {
	if clk[0] == 0 {
		return // no tail
	}
	now := unixNow()
	pc.clkMu.Lock()
	pc.rxPeerSend, pc.rxLocal = clk[0], now
	pc.clkMu.Unlock()
	if clk[1] != 0 {
		// t1 = our stamp the peer echoed, t2 = peer's arrival time of it,
		// t3 = peer's send time of this beacon, t4 = now.
		pc.est.AddSample(clk[1], clk[2], clk[0], now)
		if off, rtt, ok := pc.est.Offset(); ok {
			pc.opts.obs.setClock(off, rtt)
		}
	}
}

// clockOffset reports the link's current offset estimate (peer clock minus
// local clock), the RTT of the sample behind it, and whether one exists.
func (pc *peerConn) clockOffset() (offset, rtt float64, ok bool) {
	return pc.est.Offset()
}

// readHello performs the receiving half of the link handshake with a
// deadline, returning the peer's hello frame.
func readHello(conn net.Conn, timeout time.Duration) (Frame, error) {
	if timeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(timeout))
		defer conn.SetReadDeadline(time.Time{})
	}
	f, err := readFrame(conn)
	if err != nil {
		return Frame{}, fmt.Errorf("distnet: reading hello: %w", err)
	}
	if f.Type != FrameHello {
		return Frame{}, fmt.Errorf("distnet: expected hello, got %v frame", f.Type)
	}
	return f, nil
}
