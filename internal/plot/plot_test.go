package plot

import (
	"strings"
	"testing"
)

func TestChartPlotsAllSeries(t *testing.T) {
	s := []Series{
		{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
		{Name: "down", X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}},
	}
	out := Chart(s, 40, 10)
	if !strings.Contains(out, "o up") || !strings.Contains(out, "+ down") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "+") {
		t.Error("markers not plotted")
	}
	// Axis labels present.
	if !strings.Contains(out, "3") || !strings.Contains(out, "0") {
		t.Errorf("axis labels missing:\n%s", out)
	}
}

func TestChartIncreasingLineOrientation(t *testing.T) {
	s := []Series{{Name: "line", X: []float64{0, 10}, Y: []float64{0, 10}}}
	out := Chart(s, 30, 8)
	lines := strings.Split(out, "\n")
	// The max-y point plots near the right of the top row; the min-y point
	// near the left of the bottom grid row.
	top, bottom := lines[0], lines[7]
	if !strings.Contains(top, "o") {
		t.Errorf("top row missing point: %q", top)
	}
	if !strings.Contains(bottom, "o") {
		t.Errorf("bottom row missing point: %q", bottom)
	}
	if strings.Index(top, "o") <= strings.Index(bottom, "o") {
		t.Error("line not oriented bottom-left to top-right")
	}
}

func TestChartEmptyAndDegenerate(t *testing.T) {
	if out := Chart(nil, 40, 10); !strings.Contains(out, "no data") {
		t.Errorf("empty chart = %q", out)
	}
	// Single point: degenerate ranges must not divide by zero.
	out := Chart([]Series{{Name: "pt", X: []float64{5}, Y: []float64{7}}}, 20, 6)
	if !strings.Contains(out, "o") {
		t.Errorf("single point not plotted:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	s := []Series{
		{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Name: "b,c", X: []float64{1, 2}, Y: []float64{30, 40}},
	}
	out := CSV(s)
	want := "x,a,b;c\n1,10,30\n2,20,40\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}

func TestCSVUnevenSeries(t *testing.T) {
	s := []Series{
		{Name: "a", X: []float64{1, 2, 3}, Y: []float64{1, 2, 3}},
		{Name: "b", X: []float64{1}, Y: []float64{9}},
	}
	out := CSV(s)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("rows = %d, want 4: %q", len(lines), out)
	}
	if lines[2] != "2,2," {
		t.Errorf("uneven row = %q", lines[2])
	}
}
