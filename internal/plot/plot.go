// Package plot renders multi-series line charts as ASCII, so the
// reproduction binaries can show the paper's figures directly in a
// terminal.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Name string
	X, Y []float64
}

// markers assigned to series in order.
var markers = []byte{'o', '+', 'x', '*', '#', '@', '%', '&'}

// Chart renders the series on a width×height character canvas with axis
// ranges derived from the data. Points are plotted at their nearest cell;
// a legend maps markers to series names.
func Chart(series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 5 {
		height = 5
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
			points++
		}
	}
	if points == 0 {
		return "(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if i >= len(s.Y) || math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			c := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			r := height - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1))
			if c >= 0 && c < width && r >= 0 && r < height {
				grid[r][c] = m
			}
		}
	}
	var b strings.Builder
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3g", ymax)
		case height - 1:
			label = fmt.Sprintf("%8.3g", ymin)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, row)
	}
	fmt.Fprintf(&b, "%8s  %-*.4g%*.4g\n", "", width/2, xmin, width-width/2, xmax)
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(&b, "%8s  %s\n", "", strings.Join(legend, "   "))
	return b.String()
}

// CSV renders the series as comma-separated columns (x, then one column per
// series; rows follow the first series' x values, other series matched by
// index).
func CSV(series []Series) string {
	var b strings.Builder
	b.WriteString("x")
	for _, s := range series {
		b.WriteString(",")
		b.WriteString(strings.ReplaceAll(s.Name, ",", ";"))
	}
	b.WriteString("\n")
	rows := 0
	for _, s := range series {
		if len(s.X) > rows {
			rows = len(s.X)
		}
	}
	for i := 0; i < rows; i++ {
		wrote := false
		for _, s := range series {
			if i < len(s.X) {
				fmt.Fprintf(&b, "%g", s.X[i])
				wrote = true
				break
			}
		}
		if !wrote {
			continue
		}
		for _, s := range series {
			b.WriteString(",")
			if i < len(s.Y) {
				fmt.Fprintf(&b, "%g", s.Y[i])
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
