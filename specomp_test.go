package specomp_test

import (
	"math"
	"testing"

	"specomp"
)

// facadeApp exercises the public API end to end: a smooth scalar iteration
// on a 3-machine simulated cluster.
type facadeApp struct {
	pid int
}

func (a *facadeApp) InitLocal() []float64 { return []float64{float64(a.pid) + 1} }

func (a *facadeApp) Compute(view [][]float64, t int) []float64 {
	sum := 0.0
	for _, part := range view {
		sum += part[0]
	}
	return []float64{0.5*view[a.pid][0] + 0.5*sum/float64(len(view))}
}

func (a *facadeApp) ComputeOps() float64 { return 300 }

func (a *facadeApp) Check(peer int, pred, act, local []float64, t int) specomp.CheckResult {
	return specomp.RelErrCheck(0.02, 1, pred, act)
}

func (a *facadeApp) RepairOps(r specomp.CheckResult) float64 { return 300 }

func TestPublicAPISmoke(t *testing.T) {
	cc := specomp.ClusterConfig{
		Machines: specomp.UniformMachines(3, 1000),
		Net:      specomp.FixedNet(0.5),
	}
	run := func(fw int) ([]specomp.Result, float64) {
		results, err := specomp.RunCluster(cc, specomp.EngineConfig{
			FW: fw, MaxIter: 20, Predictor: specomp.LinearPredictor(),
		}, func(p *specomp.Proc) specomp.App { return &facadeApp{pid: p.ID()} })
		if err != nil {
			t.Fatal(err)
		}
		return results, specomp.TotalTime(results)
	}
	blocking, tB := run(0)
	spec, tS := run(1)
	if tS >= tB {
		t.Errorf("speculation did not mask latency: %v vs %v", tS, tB)
	}
	agg := specomp.Aggregate(spec)
	if agg.SpecsMade == 0 {
		t.Error("no speculation recorded through the facade")
	}
	// Both runs converge to the same fixed point (the blend's average).
	for i := range blocking {
		if math.Abs(blocking[i].Final[0]-spec[i].Final[0]) > 0.05 {
			t.Errorf("proc %d: blocking %v vs spec %v", i, blocking[i].Final[0], spec[i].Final[0])
		}
	}
}

func TestPublicAPISharedBusAndLinearMachines(t *testing.T) {
	cc := specomp.ClusterConfig{
		Machines: specomp.LinearMachines(4, 2000, 4),
		Net:      specomp.SharedBusNet(0.01, 1e6, 0.001),
	}
	results, err := specomp.RunCluster(cc, specomp.EngineConfig{
		FW: 1, MaxIter: 10, Predictor: specomp.ZeroOrderPredictor(),
	}, func(p *specomp.Proc) specomp.App { return &facadeApp{pid: p.ID()} })
	if err != nil {
		t.Fatal(err)
	}
	if specomp.TotalTime(results) <= 0 {
		t.Error("no virtual time elapsed")
	}
}
